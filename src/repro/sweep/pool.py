"""Persistent warm-worker pool for the sweep engine.

``ProcessPoolExecutor`` made parallel sweeps *slower* than serial on
the bench box (``speedup_vs_serial: 0.51``): every ``SweepEngine.run``
paid pool spawn, interpreter boot, module import, and one
payload-pickle round-trip *per point*, which swamps few-millisecond
simulations.  :class:`WorkerPool` removes all four costs:

* **Fork once, stay hot.**  Workers are long-lived daemon processes
  spawned on first use.  They pre-import the simulation stack
  (:mod:`repro.explore.runner` and its kernel/CAM dependencies) before
  reporting ready, so after warmup a dispatch touches no import
  machinery.  The pool survives across ``run()`` calls — multi-stage
  strategies (screen + finals, fault campaigns, CLI resume loops)
  reuse one pool instead of respawning.
* **Batched shards.**  Work is dispatched as *batches* of plain-JSON
  point payloads; one IPC round-trip carries many points and returns a
  compact list of result dicts (:func:`repro.explore.runner.run_payload_batch`
  is the worker-side entry point).  Workers pull batches off one shared
  queue, so load balances even when batch costs are skewed.
* **Measurable overhead.**  :meth:`WorkerPool.ping` round-trips a no-op
  task and returns the submit-to-worker-start latency, which is what
  ``benchmarks/run_all.py`` records as ``sweep.dispatch_overhead_ms``.

Results are dict-in/dict-out and order-restored by task id, so the
engine's canonicalizing ``to_dict``/``from_dict`` round-trip is
untouched: results stay bit-identical across pool sizes, batch sizes,
and cache states.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Seconds to wait for a worker to report ready before declaring the
#: pool broken.  Generous: a cold ``spawn``-method worker pays a full
#: interpreter boot plus the simulation-stack import.
READY_TIMEOUT_S = 60.0

#: Seconds between liveness checks while waiting on results.
POLL_INTERVAL_S = 0.1


class WorkerPoolError(RuntimeError):
    """A worker died or misbehaved; the pool can no longer be trusted."""


def resolve_workers(workers) -> int:
    """Normalize a worker-count request to a positive int.

    ``None`` means serial (1).  ``"auto"`` resolves to
    :func:`os.cpu_count` so ``SweepEngine(workers="auto")`` and
    ``python -m repro.sweep --workers auto`` saturate the machine.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(workers)
    return max(1, int(workers))


def _preferred_context():
    """``fork`` where available (workers inherit warm imports), else
    the platform default (``spawn``; workers import on boot instead)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(worker_id: int, tasks, results) -> None:
    """Long-lived worker loop: pre-import, report ready, serve batches.

    Task messages are ``(kind, task_id, body)``:

    * ``"batch"`` — ``body`` is a payload list; simulate it via
      :func:`repro.explore.runner.run_payload_batch`; reply
      ``("done", task_id, started, result_dicts)``.
    * ``"tbatch"`` — telemetry batch: ``body`` is
      ``{"payloads", "keys"}``; per-point progress events stream back
      as interleaved ``("event", None, ts, info)`` messages while the
      batch runs, and the reply is
      ``("done", task_id, started, (result_dicts, blob))`` where
      ``blob`` carries the worker's spans and metrics snapshot
      (:func:`repro.explore.runner.run_payload_batch_telemetry`).
      Results come from the same simulate path as ``"batch"``, so
      telemetry never changes simulation output.
    * ``"ping"`` — no-op; reply
      ``("pong", task_id, started, worker_id)`` where ``started`` is
      the worker-side :func:`time.time` at pickup (wall clock is the
      one timestamp comparable across processes).
    * ``None`` — shut down.

    Any exception is caught and shipped back as
    ``("error", task_id, started, traceback_text)`` so the parent can
    raise with context instead of hanging.
    """
    # Pre-import the entire simulation stack (kernel, CAMs, traffic,
    # faults) so the first real batch runs as hot as the hundredth.
    from repro.explore.runner import run_payload_batch

    results.put(("ready", worker_id, os.getpid(), None))
    points_done = 0
    while True:
        item = tasks.get()
        if item is None:
            break
        kind, task_id, body = item
        started = time.time()
        if kind == "ping":
            results.put(("pong", task_id, started, worker_id))
            # Yield the CPU before re-entering the task queue: the
            # queue cannot target a worker, and its lock is not
            # FIFO-fair, so on a busy box one fast worker could answer
            # every ping of a per-worker probe while its siblings
            # starve.  The backoff happens after ``started`` is
            # stamped, so measured dispatch latency is unaffected.
            time.sleep(0.002)
            continue
        if kind == "tbatch":
            # Lazy import keeps plain (telemetry-off) workers from
            # ever loading the observability stack.
            from repro.explore.runner import (
                run_payload_batch_telemetry,
            )

            def emit(info):
                nonlocal points_done
                points_done += 1
                info = dict(info)
                # Worker-lifetime progress counter: the heartbeat
                # figure the progress stream shows per worker.
                info["points_done"] = points_done
                info["ts"] = time.time()
                results.put(("event", None, info["ts"], info))

            try:
                batch, blob = run_payload_batch_telemetry(
                    body["payloads"], keys=body.get("keys"),
                    emit=emit, worker_id=worker_id,
                )
            except BaseException:
                results.put(("error", task_id, started,
                             traceback.format_exc()))
            else:
                results.put(("done", task_id, started, (batch, blob)))
            continue
        try:
            batch = run_payload_batch(body)
        except BaseException:
            results.put(("error", task_id, started,
                         traceback.format_exc()))
        else:
            results.put(("done", task_id, started, batch))


class WorkerPool:
    """A pool of persistent, pre-warmed simulation worker processes.

    Lazily spawned: constructing a pool is free; processes fork on the
    first :meth:`ensure_started` / :meth:`map_batches` / :meth:`ping`
    and then persist until :meth:`close` (or interpreter exit — workers
    are daemons).  ``spawn_count`` tracks every process ever started,
    so "a warm second run spawned zero new processes" is assertable:
    it simply stays equal to ``workers``.
    """

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)
        self._ctx = _preferred_context()
        self._procs: List = []
        self._tasks = None
        self._results = None
        self._next_task_id = 0
        #: processes spawned over the pool's lifetime
        self.spawn_count = 0
        #: batches shipped to workers over the pool's lifetime
        self.batches_dispatched = 0
        #: points shipped inside those batches
        self.points_dispatched = 0
        #: spawn generations: how many times the workers (re)started —
        #: telemetry keys worker identity on this because the OS can
        #: recycle a pid across generations
        self.generation = 0
        #: last measured submit-to-start latency per worker id (seconds)
        self.ping_latencies: Dict[int, float] = {}
        #: telemetry hook: called with every worker event dict that
        #: arrives interleaved with results (``"tbatch"`` dispatches)
        self.on_event: Optional[Callable[[dict], None]] = None
        #: telemetry hook: called on idle result-queue polls, so stall
        #: detection runs even while every worker is silent
        self.on_idle: Optional[Callable[[], None]] = None

    # -- lifecycle ----------------------------------------------------

    @property
    def started(self) -> bool:
        """True once workers exist (and :meth:`close` has not run)."""
        return bool(self._procs)

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (empty before start/after close)."""
        return [p.pid for p in self._procs]

    def ensure_started(self) -> None:
        """Spawn and warm the workers if they are not already up.

        Blocks until every worker has imported the simulation stack and
        reported ready, so callers can treat "started" as "hot".
        """
        if self._procs:
            return
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        for worker_id in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self._tasks, self._results),
                name=f"sweep-worker-{worker_id}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self.spawn_count += 1
        self.generation += 1
        ready = 0
        deadline = time.monotonic() + READY_TIMEOUT_S
        while ready < self.workers:
            message = self._get_result(deadline)
            if message[0] == "ready":
                ready += 1

    def close(self) -> None:
        """Shut the workers down; idempotent.

        A closed pool may be started again (a fresh generation of
        processes — ``spawn_count`` keeps counting up).
        """
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):
                pass
        self._procs = []
        self._tasks = None
        self._results = None

    def __enter__(self) -> "WorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; daemons die with the process
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch -----------------------------------------------------

    def map_batches(self, batches: Sequence[Sequence[dict]],
                    ) -> List[List[dict]]:
        """Run every payload batch on the pool; results in input order.

        All batches are enqueued up front on one shared queue — free
        workers pull the next batch, so scheduling is dynamic — and
        the replies are reassembled by task id, so the output order
        (and therefore every downstream result) is independent of
        which worker computed what.
        """
        self.ensure_started()
        ids = []
        for batch in batches:
            task_id = self._next_task_id
            self._next_task_id += 1
            self._tasks.put(("batch", task_id, list(batch)))
            ids.append(task_id)
            self.batches_dispatched += 1
            self.points_dispatched += len(batch)
        expected = set(ids)
        collected: Dict[int, List[dict]] = {}
        while expected:
            kind, task_id, _started, body = self._get_result()
            if task_id not in expected:
                continue  # stale reply from an aborted earlier call
            if kind == "error":
                raise WorkerPoolError(
                    f"sweep worker failed on batch {task_id}:\n{body}"
                )
            if kind == "done":
                collected[task_id] = body
                expected.discard(task_id)
        return [collected[i] for i in ids]

    def map_batches_telemetry(
        self, batches: Sequence[Sequence[dict]],
        key_batches: Optional[Sequence[Sequence[str]]] = None,
    ) -> Tuple[List[List[dict]], List[dict]]:
        """Like :meth:`map_batches`, but with telemetry capture.

        Dispatches ``"tbatch"`` tasks, so every worker records
        per-point spans and a metrics snapshot and streams per-point
        progress events back while computing (routed to
        :attr:`on_event` by :meth:`_get_result`).  ``key_batches``
        (parallel to ``batches``) labels spans/events with content
        keys.  Each batch completion additionally fires a
        parent-side ``batch_done`` event carrying submit and reply
        timestamps — the orchestrator's batch spans.

        Returns ``(result_batches, blobs)``, both in input order.
        Result dicts are bit-identical to :meth:`map_batches` output —
        telemetry observes the simulate path, it never changes it.
        """
        self.ensure_started()
        ids: List[int] = []
        submit_ts: Dict[int, float] = {}
        for index, batch in enumerate(batches):
            task_id = self._next_task_id
            self._next_task_id += 1
            body = {
                "payloads": list(batch),
                "keys": (list(key_batches[index])
                         if key_batches is not None else None),
            }
            submit_ts[task_id] = time.time()
            self._tasks.put(("tbatch", task_id, body))
            ids.append(task_id)
            self.batches_dispatched += 1
            self.points_dispatched += len(batch)
        expected = set(ids)
        collected: Dict[int, tuple] = {}
        while expected:
            kind, task_id, _started, body = self._get_result()
            if task_id not in expected:
                continue  # stale reply from an aborted earlier call
            if kind == "error":
                raise WorkerPoolError(
                    f"sweep worker failed on batch {task_id}:\n{body}"
                )
            if kind == "done":
                collected[task_id] = body
                expected.discard(task_id)
                if self.on_event is not None:
                    results_list, blob = body
                    self.on_event({
                        "type": "batch_done",
                        "batch": task_id,
                        "points": len(results_list),
                        "worker_id": blob.get("worker_id"),
                        "pid": blob.get("pid"),
                        "submit_ts": submit_ts[task_id],
                        "ts": time.time(),
                    })
        return ([collected[i][0] for i in ids],
                [collected[i][1] for i in ids])

    def ping(self) -> float:
        """Seconds from submit to worker-side start for a no-op task.

        The per-point dispatch overhead a warm pool still pays — what
        the bench records as ``sweep.dispatch_overhead_ms``.  One ping
        per worker goes out (the shared task queue cannot target a
        specific worker, so a few rounds may be needed before every
        worker has answered); each pong's latency is recorded under
        the replying worker's id in :attr:`ping_latencies` (surfaced
        by :meth:`stats` and the run ledger), and the fastest
        round-trip of the call is returned.
        """
        self.ensure_started()
        best: Optional[float] = None
        seen: set = set()
        for _ in range(5):
            pending: Dict[int, float] = {}
            for _ in range(self.workers):
                task_id = self._next_task_id
                self._next_task_id += 1
                pending[task_id] = time.time()
                self._tasks.put(("ping", task_id, None))
            while pending:
                kind, got_id, started, body = self._get_result()
                if kind != "pong" or got_id not in pending:
                    continue
                latency = max(0.0, started - pending.pop(got_id))
                if best is None or latency < best:
                    best = latency
                if isinstance(body, int):
                    self.ping_latencies[body] = latency
                    seen.add(body)
            if len(seen) >= self.workers:
                break
        return best if best is not None else 0.0

    def stats(self) -> dict:
        """JSON-able pool statistics for ledgers and bench records."""
        return {
            "workers": self.workers,
            "started": self.started,
            "generation": self.generation,
            "spawned": self.spawn_count,
            "batches_dispatched": self.batches_dispatched,
            "points_dispatched": self.points_dispatched,
            "ping_latency_s": {
                str(wid): round(latency, 6)
                for wid, latency in sorted(self.ping_latencies.items())
            },
        }

    # -- internals ----------------------------------------------------

    def _get_result(self, deadline: Optional[float] = None):
        """One protocol message off the result queue, watching health.

        Interleaved ``"event"`` messages (worker-side progress during
        ``"tbatch"`` dispatches) are consumed here and routed to
        :attr:`on_event`; idle polls invoke :attr:`on_idle` so
        heartbeat/stall telemetry runs even while workers are silent.
        """
        while True:
            try:
                message = self._results.get(timeout=POLL_INTERVAL_S)
            except queue_module.Empty:
                if self.on_idle is not None:
                    self.on_idle()
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    names = ", ".join(
                        f"{p.name} (exit {p.exitcode})" for p in dead
                    )
                    self.close()
                    raise WorkerPoolError(
                        f"sweep worker(s) died: {names}"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    self.close()
                    raise WorkerPoolError(
                        "timed out waiting for sweep workers to warm up"
                    ) from None
                continue
            if message[0] == "event":
                if self.on_event is not None:
                    self.on_event(message[3])
                continue
            return message

    def __repr__(self) -> str:
        state = "warm" if self.started else "cold"
        return (f"WorkerPool(workers={self.workers}, {state}, "
                f"spawned={self.spawn_count})")
