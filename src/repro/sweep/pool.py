"""Persistent warm-worker pool for the sweep engine.

``ProcessPoolExecutor`` made parallel sweeps *slower* than serial on
the bench box (``speedup_vs_serial: 0.51``): every ``SweepEngine.run``
paid pool spawn, interpreter boot, module import, and one
payload-pickle round-trip *per point*, which swamps few-millisecond
simulations.  :class:`WorkerPool` removes all four costs:

* **Fork once, stay hot.**  Workers are long-lived daemon processes
  spawned on first use.  They pre-import the simulation stack
  (:mod:`repro.explore.runner` and its kernel/CAM dependencies) before
  reporting ready, so after warmup a dispatch touches no import
  machinery.  The pool survives across ``run()`` calls — multi-stage
  strategies (screen + finals, fault campaigns, CLI resume loops)
  reuse one pool instead of respawning.
* **Batched shards.**  Work is dispatched as *batches* of plain-JSON
  point payloads; one IPC round-trip carries many points and returns a
  compact list of result dicts (:func:`repro.explore.runner.run_payload_batch`
  is the worker-side entry point).  Workers pull batches off one shared
  queue, so load balances even when batch costs are skewed.
* **Measurable overhead.**  :meth:`WorkerPool.ping` round-trips a no-op
  task and returns the submit-to-worker-start latency, which is what
  ``benchmarks/run_all.py`` records as ``sweep.dispatch_overhead_ms``.

Results are dict-in/dict-out and order-restored by task id, so the
engine's canonicalizing ``to_dict``/``from_dict`` round-trip is
untouched: results stay bit-identical across pool sizes, batch sizes,
and cache states.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from typing import Dict, List, Optional, Sequence

#: Seconds to wait for a worker to report ready before declaring the
#: pool broken.  Generous: a cold ``spawn``-method worker pays a full
#: interpreter boot plus the simulation-stack import.
READY_TIMEOUT_S = 60.0

#: Seconds between liveness checks while waiting on results.
POLL_INTERVAL_S = 0.1


class WorkerPoolError(RuntimeError):
    """A worker died or misbehaved; the pool can no longer be trusted."""


def resolve_workers(workers) -> int:
    """Normalize a worker-count request to a positive int.

    ``None`` means serial (1).  ``"auto"`` resolves to
    :func:`os.cpu_count` so ``SweepEngine(workers="auto")`` and
    ``python -m repro.sweep --workers auto`` saturate the machine.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(workers)
    return max(1, int(workers))


def _preferred_context():
    """``fork`` where available (workers inherit warm imports), else
    the platform default (``spawn``; workers import on boot instead)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _worker_main(worker_id: int, tasks, results) -> None:
    """Long-lived worker loop: pre-import, report ready, serve batches.

    Task messages are ``(kind, task_id, payloads)``:

    * ``"batch"`` — simulate every payload via
      :func:`repro.explore.runner.run_payload_batch`; reply
      ``("done", task_id, started, result_dicts)``.
    * ``"ping"`` — no-op; reply ``("pong", task_id, started, None)``
      where ``started`` is the worker-side :func:`time.time` at pickup
      (wall clock is the one timestamp comparable across processes).
    * ``None`` — shut down.

    Any exception is caught and shipped back as
    ``("error", task_id, started, traceback_text)`` so the parent can
    raise with context instead of hanging.
    """
    # Pre-import the entire simulation stack (kernel, CAMs, traffic,
    # faults) so the first real batch runs as hot as the hundredth.
    from repro.explore.runner import run_payload_batch

    results.put(("ready", worker_id, os.getpid(), None))
    while True:
        item = tasks.get()
        if item is None:
            break
        kind, task_id, payloads = item
        started = time.time()
        if kind == "ping":
            results.put(("pong", task_id, started, None))
            continue
        try:
            batch = run_payload_batch(payloads)
        except BaseException:
            results.put(("error", task_id, started,
                         traceback.format_exc()))
        else:
            results.put(("done", task_id, started, batch))


class WorkerPool:
    """A pool of persistent, pre-warmed simulation worker processes.

    Lazily spawned: constructing a pool is free; processes fork on the
    first :meth:`ensure_started` / :meth:`map_batches` / :meth:`ping`
    and then persist until :meth:`close` (or interpreter exit — workers
    are daemons).  ``spawn_count`` tracks every process ever started,
    so "a warm second run spawned zero new processes" is assertable:
    it simply stays equal to ``workers``.
    """

    def __init__(self, workers: int):
        self.workers = resolve_workers(workers)
        self._ctx = _preferred_context()
        self._procs: List = []
        self._tasks = None
        self._results = None
        self._next_task_id = 0
        #: processes spawned over the pool's lifetime
        self.spawn_count = 0
        #: batches shipped to workers over the pool's lifetime
        self.batches_dispatched = 0
        #: points shipped inside those batches
        self.points_dispatched = 0

    # -- lifecycle ----------------------------------------------------

    @property
    def started(self) -> bool:
        """True once workers exist (and :meth:`close` has not run)."""
        return bool(self._procs)

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (empty before start/after close)."""
        return [p.pid for p in self._procs]

    def ensure_started(self) -> None:
        """Spawn and warm the workers if they are not already up.

        Blocks until every worker has imported the simulation stack and
        reported ready, so callers can treat "started" as "hot".
        """
        if self._procs:
            return
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        for worker_id in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self._tasks, self._results),
                name=f"sweep-worker-{worker_id}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self.spawn_count += 1
        ready = 0
        deadline = time.monotonic() + READY_TIMEOUT_S
        while ready < self.workers:
            message = self._get_result(deadline)
            if message[0] == "ready":
                ready += 1

    def close(self) -> None:
        """Shut the workers down; idempotent.

        A closed pool may be started again (a fresh generation of
        processes — ``spawn_count`` keeps counting up).
        """
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):
                pass
        self._procs = []
        self._tasks = None
        self._results = None

    def __enter__(self) -> "WorkerPool":
        self.ensure_started()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; daemons die with the process
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch -----------------------------------------------------

    def map_batches(self, batches: Sequence[Sequence[dict]],
                    ) -> List[List[dict]]:
        """Run every payload batch on the pool; results in input order.

        All batches are enqueued up front on one shared queue — free
        workers pull the next batch, so scheduling is dynamic — and
        the replies are reassembled by task id, so the output order
        (and therefore every downstream result) is independent of
        which worker computed what.
        """
        self.ensure_started()
        ids = []
        for batch in batches:
            task_id = self._next_task_id
            self._next_task_id += 1
            self._tasks.put(("batch", task_id, list(batch)))
            ids.append(task_id)
            self.batches_dispatched += 1
            self.points_dispatched += len(batch)
        expected = set(ids)
        collected: Dict[int, List[dict]] = {}
        while expected:
            kind, task_id, _started, body = self._get_result()
            if task_id not in expected:
                continue  # stale reply from an aborted earlier call
            if kind == "error":
                raise WorkerPoolError(
                    f"sweep worker failed on batch {task_id}:\n{body}"
                )
            if kind == "done":
                collected[task_id] = body
                expected.discard(task_id)
        return [collected[i] for i in ids]

    def ping(self) -> float:
        """Seconds from submit to worker-side start for a no-op task.

        The per-point dispatch overhead a warm pool still pays — what
        the bench records as ``sweep.dispatch_overhead_ms``.
        """
        self.ensure_started()
        task_id = self._next_task_id
        self._next_task_id += 1
        submitted = time.time()
        self._tasks.put(("ping", task_id, None))
        while True:
            kind, got_id, started, _body = self._get_result()
            if got_id == task_id and kind == "pong":
                return max(0.0, started - submitted)

    # -- internals ----------------------------------------------------

    def _get_result(self, deadline: Optional[float] = None):
        """One message off the result queue, watching worker health."""
        while True:
            try:
                return self._results.get(timeout=POLL_INTERVAL_S)
            except queue_module.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    names = ", ".join(
                        f"{p.name} (exit {p.exitcode})" for p in dead
                    )
                    self.close()
                    raise WorkerPoolError(
                        f"sweep worker(s) died: {names}"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    self.close()
                    raise WorkerPoolError(
                        "timed out waiting for sweep workers to warm up"
                    ) from None

    def __repr__(self) -> str:
        state = "warm" if self.started else "cold"
        return (f"WorkerPool(workers={self.workers}, {state}, "
                f"spawned={self.spawn_count})")
