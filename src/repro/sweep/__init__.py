"""``repro.sweep`` — parallel design-space sweeps with a result cache.

The exploration runner (:mod:`repro.explore`) simulates one design
point at a time; this package turns that into an exploration *engine*:
:class:`SweepPoint` gives every point a canonical content key,
:class:`SweepStore` persists results as append-only JSONL so sweeps
resume incrementally, :class:`SweepEngine` shards uncached points over
a process pool with bit-identical results regardless of pool size, and
the search strategies (:class:`GridSearch`, :class:`RandomSearch`,
:class:`SuccessiveHalving`) decide which points earn simulation time.
``python -m repro.sweep`` drives it all from the command line and emits
ranked JSON/CSV reports.
"""

from repro.sweep.engine import (
    OBJECTIVES,
    SweepEngine,
    SweepOutcome,
    objective_value,
    ranked,
)
from repro.sweep.points import CODE_VERSION, SweepPoint, points_for_space
from repro.sweep.store import STORE_SCHEMA, SweepStore
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
)

__all__ = [
    "CODE_VERSION",
    "GridSearch",
    "OBJECTIVES",
    "RandomSearch",
    "STORE_SCHEMA",
    "SuccessiveHalving",
    "SweepEngine",
    "SweepOutcome",
    "SweepPoint",
    "SweepStore",
    "objective_value",
    "points_for_space",
    "ranked",
]
