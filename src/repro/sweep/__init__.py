"""``repro.sweep`` — parallel design-space sweeps with a result cache.

The exploration runner (:mod:`repro.explore`) simulates one design
point at a time; this package turns that into an exploration *engine*:
:class:`SweepPoint` gives every point a canonical content key,
:class:`SweepStore` persists results as append-only JSONL so sweeps
resume incrementally, :class:`SweepEngine` shards uncached points in
batched chunks over a persistent :class:`WorkerPool` of warm,
pre-imported worker processes — bit-identical results regardless of
pool size, batch size, or cache state, with process startup paid once
per engine instead of once per run — and the search strategies
(:class:`GridSearch`, :class:`RandomSearch`,
:class:`SuccessiveHalving`) decide which points earn simulation time.
The runtime is *self-healing*: :class:`RecoveryPolicy` bounds worker
respawns, batch requeues/bisection toward poison points, per-point
deadlines, and quarantine (kind-tagged ``failed`` store records that
resumed runs skip deterministically); :class:`ChaosPlan` is the
harness that proves results stay bit-identical under injected worker
kills.  ``python -m repro.sweep`` drives it all from the command line
and emits ranked JSON/CSV reports.
"""

from repro.sweep.engine import (
    DEFAULT_OVERSUBSCRIBE,
    OBJECTIVES,
    SweepEngine,
    SweepOutcome,
    objective_value,
    quarantined,
    ranked,
)
from repro.sweep.points import CODE_VERSION, SweepPoint, points_for_space
from repro.sweep.pool import (
    WorkerPool,
    WorkerPoolError,
    resolve_workers,
)
from repro.sweep.recovery import (
    ChaosPlan,
    RecoveryPolicy,
    ShutdownGuard,
    SweepInterrupted,
)
from repro.sweep.store import STORE_SCHEMA, SweepStore
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
)

__all__ = [
    "CODE_VERSION",
    "ChaosPlan",
    "DEFAULT_OVERSUBSCRIBE",
    "GridSearch",
    "OBJECTIVES",
    "RandomSearch",
    "RecoveryPolicy",
    "STORE_SCHEMA",
    "ShutdownGuard",
    "SuccessiveHalving",
    "SweepEngine",
    "SweepInterrupted",
    "SweepOutcome",
    "SweepPoint",
    "SweepStore",
    "WorkerPool",
    "WorkerPoolError",
    "objective_value",
    "points_for_space",
    "quarantined",
    "ranked",
    "resolve_workers",
]
