"""``repro.sweep`` — parallel design-space sweeps with a result cache.

The exploration runner (:mod:`repro.explore`) simulates one design
point at a time; this package turns that into an exploration *engine*:
:class:`SweepPoint` gives every point a canonical content key,
:class:`SweepStore` persists results as append-only JSONL so sweeps
resume incrementally, :class:`SweepEngine` shards uncached points in
batched chunks over a persistent :class:`WorkerPool` of warm,
pre-imported worker processes — bit-identical results regardless of
pool size, batch size, or cache state, with process startup paid once
per engine instead of once per run — and the search strategies
(:class:`GridSearch`, :class:`RandomSearch`,
:class:`SuccessiveHalving`) decide which points earn simulation time.
``python -m repro.sweep`` drives it all from the command line and emits
ranked JSON/CSV reports.
"""

from repro.sweep.engine import (
    DEFAULT_OVERSUBSCRIBE,
    OBJECTIVES,
    SweepEngine,
    SweepOutcome,
    objective_value,
    ranked,
)
from repro.sweep.points import CODE_VERSION, SweepPoint, points_for_space
from repro.sweep.pool import (
    WorkerPool,
    WorkerPoolError,
    resolve_workers,
)
from repro.sweep.store import STORE_SCHEMA, SweepStore
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_OVERSUBSCRIBE",
    "GridSearch",
    "OBJECTIVES",
    "RandomSearch",
    "STORE_SCHEMA",
    "SuccessiveHalving",
    "SweepEngine",
    "SweepOutcome",
    "SweepPoint",
    "SweepStore",
    "WorkerPool",
    "WorkerPoolError",
    "objective_value",
    "points_for_space",
    "ranked",
    "resolve_workers",
]
