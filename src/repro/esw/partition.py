"""HW/SW partition specification and the paper's eSW constraints.

§4 of the paper sets two constraints for a PE to be synthesizable to an
embedded-software entity:

1. *"eSW generation takes place in a transaction-level model of the
   system, namely the component-assembly model"* — the PE's behaviour
   must be untimed-functional with communication through channels, not
   pins.
2. *"The PEs that are to become eSW exclusively must use SHIP channels
   for communication with other PEs of the system."*

:func:`validate_partition` enforces both mechanically and returns a
machine-checkable report, so a violated constraint is a diagnosed design
error, not a silent mis-synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.kernel.errors import KernelError
from repro.kernel.module import Module
from repro.kernel.port import Port
from repro.ship.ports import ShipPort


class EswConstraintError(KernelError):
    """A PE selected for eSW violates the paper's §4 constraints."""

    def __init__(self, violations: List[str]):
        super().__init__(
            "eSW constraints violated:\n  " + "\n  ".join(violations)
        )
        self.violations = violations


@dataclass
class PartitionSpec:
    """Assignment of PEs to the SW partition.

    ``priorities`` optionally assigns an RTOS priority per PE name
    (default 10); unlisted PEs stay in hardware.
    """

    software: List[Module] = field(default_factory=list)
    priorities: Dict[str, int] = field(default_factory=dict)
    default_priority: int = 10

    def priority_of(self, pe: Module) -> int:
        """RTOS priority assigned to this PE."""
        return self.priorities.get(pe.name, self.default_priority)

    def is_software(self, pe: Module) -> bool:
        """True if the PE is in the SW partition."""
        return pe in self.software


def pe_violations(pe: Module) -> List[str]:
    """Check one PE against the eSW constraints; returns violations."""
    violations: List[str] = []
    non_ship = [
        obj.full_name
        for obj in pe.iter_descendants()
        if isinstance(obj, Port) and not isinstance(obj, ShipPort)
    ]
    if non_ship:
        violations.append(
            f"{pe.full_name}: non-SHIP ports present: {non_ship} "
            f"(constraint: SW-bound PEs communicate exclusively via SHIP)"
        )
    checker = getattr(pe, "uses_only_ship", None)
    if checker is not None and not checker():
        if not non_ship:
            violations.append(
                f"{pe.full_name}: uses_only_ship() reports a violation"
            )
    if not pe.ctx.processes_of(pe):
        violations.append(
            f"{pe.full_name}: has no behaviour processes to synthesize"
        )
    return violations


def validate_partition(spec: PartitionSpec) -> List[str]:
    """Validate every SW-bound PE; raises on any violation."""
    violations: List[str] = []
    for pe in spec.software:
        violations.extend(pe_violations(pe))
    if violations:
        raise EswConstraintError(violations)
    return violations
