"""``repro.esw`` — systematic embedded-software generation.

Implements §4 of the paper: partition specification, the two eSW
constraints (component-assembly level, SHIP-only communication), and
the library-substitution synthesizer that re-hosts PE behaviour as RTOS
tasks without modifying PE source.
"""

from repro.esw.partition import (
    EswConstraintError,
    PartitionSpec,
    pe_violations,
    validate_partition,
)
from repro.esw.synthesis import (
    EswImage,
    EswSynthesisError,
    EswTask,
    ExecuteFor,
    SubstitutionCounts,
    SwChannelPort,
    generate_esw,
    run_on_rtos,
    synthesize_pe,
)

__all__ = [
    "EswConstraintError",
    "EswImage",
    "EswSynthesisError",
    "EswTask",
    "ExecuteFor",
    "PartitionSpec",
    "SubstitutionCounts",
    "SwChannelPort",
    "generate_esw",
    "pe_violations",
    "run_on_rtos",
    "synthesize_pe",
    "validate_partition",
]
