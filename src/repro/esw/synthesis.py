"""eSW synthesis: re-hosting PE behaviour as RTOS tasks.

Following Herrera et al. (the methodology the paper adopts), embedded
software is generated *"by simply substituting some SystemC library
elements for behaviourally equivalent procedures based on RTOS
functions"*.  In this library the substitution happens at the wait
level: a PE's behaviour generators are left completely untouched, but
instead of running them as kernel threads, the synthesizer drives them
through an interpreter that maps every suspension onto the RTOS —

==========================  ==========================================
SystemC-level primitive      RTOS substitution
==========================  ==========================================
``wait(t)``                  ``os.delay(t)``
``wait(event / or-list)``    blocking wait that releases the CPU
SHIP channel blocking call   same call; its internal waits become
                             RTOS blocking, so channel code *is* the
                             communication library
``ExecuteFor(t)`` marker     ``os.execute(t)`` (CPU-time annotation)
==========================  ==========================================

Because SHIP channels suspend only through events and durations, a PE
that satisfies the §4 constraints needs *no* other mapping — which is
precisely why the paper restricts SW-bound PEs to SHIP communication.

The synthesizer also counts each substitution it performs; experiment
E6 reports those counts together with the functional-equivalence check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.kernel.errors import KernelError
from repro.kernel.event import Event, EventAndList, EventOrList
from repro.kernel.module import Module
from repro.kernel.process import ThreadProcess, WaitCondition, WaitMode
from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.rtos.core import Rtos, Task
from repro.esw.partition import PartitionSpec, validate_partition


class EswSynthesisError(KernelError):
    """The synthesizer met a primitive it cannot substitute."""


@dataclass
class ExecuteFor:
    """Explicit CPU-time annotation a PE may yield.

    At the component-assembly level (plain kernel hosting) it behaves as
    ``wait(duration)`` — the PE models its computation time on dedicated
    hardware; under eSW synthesis it becomes ``os.execute(duration)``,
    so the same annotation makes the task *compete* for the shared CPU.
    """

    duration: SimTime

    def as_wait_condition(self) -> SimTime:
        """Plain-kernel meaning: wait for the duration."""
        return self.duration


@dataclass
class SubstitutionCounts:
    """How many primitives of each kind one task's synthesis replaced."""

    delays: int = 0
    event_waits: int = 0
    executes: int = 0

    @property
    def total(self) -> int:
        """All substitutions performed."""
        return self.delays + self.event_waits + self.executes


@dataclass
class EswTask:
    """One generated software entity."""

    pe_name: str
    process_name: str
    task: Task
    counts: SubstitutionCounts


@dataclass
class EswImage:
    """The result of synthesizing a partition onto one RTOS."""

    os: Rtos
    tasks: List[EswTask] = field(default_factory=list)

    @property
    def substitutions(self) -> SubstitutionCounts:
        """Summed substitution counts over all tasks."""
        total = SubstitutionCounts()
        for entry in self.tasks:
            total.delays += entry.counts.delays
            total.event_waits += entry.counts.event_waits
            total.executes += entry.counts.executes
        return total


def _interpret(os: Rtos, body: Generator,
               counts: Optional[SubstitutionCounts] = None,
               compute_cost: Optional[SimTime] = None) -> Generator:
    """Drive ``body`` as a task, substituting each suspension."""
    if counts is None:
        counts = SubstitutionCounts()
    try:
        item = next(body)
    except StopIteration:
        return
    while True:
        if compute_cost is not None and compute_cost > ZERO_TIME:
            counts.executes += 1
            yield from os.execute(compute_cost)
        wake = None
        if isinstance(item, ExecuteFor):
            counts.executes += 1
            yield from os.execute(item.duration)
        elif isinstance(item, SimTime):
            counts.delays += 1
            yield from os.delay(item)
        elif isinstance(item, (Event, EventOrList, EventAndList)):
            counts.event_waits += 1
            wake = yield from os.block_on(item)
        elif isinstance(item, WaitCondition):
            if item.mode is WaitMode.STATIC:
                raise EswSynthesisError(
                    "static-sensitivity waits cannot be synthesized to "
                    "eSW; use explicit events or durations"
                )
            counts.event_waits += 1
            wake = yield from os.block_on(item)
        elif isinstance(item, tuple):
            counts.event_waits += 1
            wake = yield from os.block_on(item)
        elif item is None:
            raise EswSynthesisError(
                "static-sensitivity waits cannot be synthesized to eSW; "
                "use explicit events or durations"
            )
        else:
            raise EswSynthesisError(
                f"cannot substitute yielded primitive {item!r}"
            )
        try:
            item = body.send(wake)
        except StopIteration:
            return


def run_on_rtos(os: Rtos, body: Generator) -> Generator:
    """Run any kernel-blocking generator from RTOS task context.

    Every suspension inside ``body`` (events, durations, ``ExecuteFor``)
    is substituted with the RTOS equivalent — the same interpreter eSW
    synthesis uses, exposed so hand-written tasks can call channel code
    directly: ``yield from run_on_rtos(os, chan.recv(end))``.

    Note: generator return values are not forwarded by ``_interpret``;
    use :class:`SwChannelPort` for value-returning channel calls.
    """
    yield from _interpret(os, body)


class SwChannelPort:
    """SHIP calls on a kernel :class:`~repro.ship.channel.ShipChannel`
    from RTOS task context — the communication library for SW tasks
    whose channel peer lives in the same simulation.

    Presents the same four blocking calls as a hardware
    :class:`~repro.ship.ports.ShipPort`, so task code is
    source-compatible with PE code.
    """

    def __init__(self, os: Rtos, channel):
        self.os = os
        self.channel = channel
        self.end = channel.claim_end(self)

    def _run(self, body: Generator) -> Generator:
        result = []

        def capture():
            value = yield from body
            result.append(value)

        yield from _interpret(self.os, capture())
        return result[0] if result else None

    def send(self, obj) -> Generator:
        """Blocking one-way transfer (master call)."""
        yield from self._run(self.channel.send(self.end, obj))

    def recv(self) -> Generator:
        """Blocking receive (slave call); returns the object."""
        return (yield from self._run(self.channel.recv(self.end)))

    def request(self, obj) -> Generator:
        """Blocking round trip (master call); returns the reply."""
        return (yield from self._run(self.channel.request(self.end, obj)))

    def reply(self, obj) -> Generator:
        """Answer the oldest outstanding request (slave call)."""
        yield from self._run(self.channel.reply(self.end, obj))

    @property
    def detected_role(self):
        """Role of this endpoint as observed by the channel."""
        return self.channel.detected_role(self.end)


def synthesize_pe(
    pe: Module,
    os: Rtos,
    priority: int = 10,
    compute_cost: Optional[SimTime] = None,
) -> List[EswTask]:
    """Turn one PE's kernel processes into RTOS tasks.

    The PE instance keeps its structure (ports, channels stay bound);
    only the *execution hosting* of its behaviour changes — the same
    move as recompiling the SystemC process body against the RTOS-based
    library.  Must run before elaboration.
    """
    processes = pe.ctx.processes_of(pe)
    if not processes:
        raise EswSynthesisError(
            f"PE {pe.full_name} has no processes to synthesize"
        )
    entries: List[EswTask] = []
    for proc in processes:
        if not isinstance(proc, ThreadProcess):
            raise EswSynthesisError(
                f"{proc.name}: only thread processes can become eSW "
                f"tasks (method processes have no blocking semantics)"
            )
        pe.ctx.unregister_process(proc)
        counts = SubstitutionCounts()
        fn = proc._fn

        def task_body(fn=fn, counts=counts) -> Generator:
            yield from _interpret(os, fn(), counts, compute_cost)

        short = proc.name.rsplit(".", 1)[-1]
        task = os.create_task(
            task_body, f"{pe.name}_{short}", priority=priority
        )
        entries.append(
            EswTask(
                pe_name=pe.full_name,
                process_name=proc.name,
                task=task,
                counts=counts,
            )
        )
    return entries


def generate_esw(
    spec: PartitionSpec,
    os: Rtos,
    compute_cost: Optional[SimTime] = None,
) -> EswImage:
    """Validate the partition and synthesize every SW-bound PE.

    This is the flow's one-call SW synthesis step: constraint checking
    (§4), then library substitution per PE, returning an
    :class:`EswImage` with per-task substitution counts.
    """
    validate_partition(spec)
    image = EswImage(os=os)
    for pe in spec.software:
        image.tasks.extend(
            synthesize_pe(
                pe, os,
                priority=spec.priority_of(pe),
                compute_cost=compute_cost,
            )
        )
    return image
