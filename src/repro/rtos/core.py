"""A priority-preemptive RTOS model on top of the simulation kernel.

The eSW-generation methodology the paper adopts (Herrera et al., DATE'03)
replaces SystemC primitives with *behaviourally equivalent procedures
based on RTOS functions*.  This module is that RTOS: a single-CPU,
fixed-priority preemptive executive with tasks, delays, and CPU-time
accounting, built as a library over :mod:`repro.kernel`.

Modeling approach (the classic "virtual processing unit"): every task is
a kernel thread process, but only the task the RTOS has *dispatched* may
advance.  Tasks consume CPU time explicitly with
``yield from os.execute(duration)``; a higher-priority task becoming
ready preempts the executing task at any point inside ``execute`` —
which is exactly the granularity at which a real RTOS can preempt
compute-bound C code (timer/interrupt boundaries).

Priorities: **lower number = higher priority** (VxWorks/embedded Linux
RT convention).  Equal priorities run FIFO, with optional round-robin
time slicing.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Generator, List, Optional

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.kernel.process import wait as kwait


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    FINISHED = "finished"


class Task:
    """One RTOS task."""

    def __init__(self, os: "Rtos", name: str, fn: Callable[[], Generator],
                 priority: int):
        self.os = os
        self.name = name
        self.fn = fn
        self.priority = priority
        self.state = TaskState.READY
        self.seq = 0  # FIFO order within a priority level, set on ready
        self._dispatch_event = Event(os, f"{os.full_name}.{name}.dispatch")
        self._preempt_event = Event(os, f"{os.full_name}.{name}.preempt")
        self.cpu_time = ZERO_TIME
        self.activations = 0
        self.preemptions = 0

    @property
    def finished(self) -> bool:
        """True once the task body returned."""
        return self.state is TaskState.FINISHED

    def __repr__(self) -> str:
        return f"Task({self.name!r}, prio={self.priority}, {self.state.value})"


class Rtos(Module):
    """A single-CPU fixed-priority preemptive RTOS instance.

    Parameters
    ----------
    context_switch:
        CPU time charged on every dispatch of a different task.
    time_slice:
        Optional round-robin quantum for equal-priority tasks.
    """

    def __init__(self, name, parent=None, ctx=None,
                 context_switch: SimTime = ZERO_TIME,
                 time_slice: Optional[SimTime] = None):
        super().__init__(name, parent, ctx)
        self.context_switch = context_switch
        self.time_slice = time_slice
        self.tasks: List[Task] = []
        self._ready: List[Task] = []
        self.current: Optional[Task] = None
        self._last_dispatched: Optional[Task] = None
        self._seq = itertools.count()
        self.context_switches = 0
        self.idle_since: Optional[SimTime] = None
        # Dispatch decisions are deferred by one delta cycle so that all
        # tasks readied at the same instant compete by priority — without
        # this, creation/wake order would win the CPU at time zero.
        self._kick = Event(self, f"{self.full_name}.kick")
        self.add_method(self._on_kick, name="scheduler_kick",
                        sensitive=[self._kick], dont_initialize=True)

    def _on_kick(self) -> None:
        if self.current is None:
            self._dispatch_next()

    def _request_dispatch(self) -> None:
        """Ask for a scheduling decision in the next delta cycle."""
        self._kick.notify_delta()

    # -- task management -------------------------------------------------------

    def create_task(self, fn: Callable[[], Generator], name: str,
                    priority: int = 10) -> Task:
        """Register a task; it becomes ready at simulation start."""
        task = Task(self, name, fn, priority)
        self.tasks.append(task)
        self.add_thread(lambda t=task: self._task_wrapper(t),
                        name=f"task_{name}")
        return task

    def _task_wrapper(self, task: Task) -> Generator:
        yield from self._wait_dispatch(task, make_ready=True)
        body = task.fn()
        if body is not None and hasattr(body, "send"):
            yield from body
        task.state = TaskState.FINISHED
        self._release_cpu(task)

    # -- scheduler core -------------------------------------------------------------

    def _make_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        task.seq = next(self._seq)
        self._ready.append(task)
        # Preempt the running task if this one outranks it.
        if self.current is not None and task.priority < self.current.priority:
            self.current._preempt_event.notify()

    def _pick_next(self) -> Optional[Task]:
        if not self._ready:
            return None
        chosen = min(self._ready, key=lambda t: (t.priority, t.seq))
        self._ready.remove(chosen)
        return chosen

    def _dispatch_next(self) -> None:
        """Called whenever the CPU is free: choose and signal a task."""
        assert self.current is None
        nxt = self._pick_next()
        if nxt is None:
            return
        self.current = nxt
        nxt.state = TaskState.RUNNING
        nxt.activations += 1
        nxt._dispatch_event.notify()

    def _wait_dispatch(self, task: Task, make_ready: bool) -> Generator:
        """Block until the scheduler hands ``task`` the CPU."""
        if make_ready:
            self._make_ready(task)
            if self.current is None:
                self._request_dispatch()
        while self.current is not task:
            yield task._dispatch_event
        if self._last_dispatched is not task:
            self.context_switches += 1
            self._last_dispatched = task
            if self.context_switch > ZERO_TIME:
                task.cpu_time += self.context_switch
                yield self.context_switch

    def _release_cpu(self, task: Task) -> None:
        if self.current is not task:
            raise SimulationError(
                f"rtos {self.full_name}: {task.name!r} released the CPU "
                f"but {self.current and self.current.name!r} holds it"
            )
        self.current = None
        self._request_dispatch()

    def _require_current(self) -> Task:
        if self.current is None:
            raise SimulationError(
                f"rtos {self.full_name}: RTOS call outside any task"
            )
        return self.current

    # -- task-facing API ----------------------------------------------------------------

    def _higher_priority_ready(self, task: Task) -> bool:
        return any(t.priority < task.priority for t in self._ready)

    def execute(self, duration: SimTime) -> Generator:
        """Consume ``duration`` of CPU time; preemptible."""
        task = self._require_current()
        remaining = duration
        while remaining > ZERO_TIME:
            if self._higher_priority_ready(task):
                # A higher-priority task became ready while we were in
                # zero-time code (the preempt notification found no
                # waiter); honour it at this preemption point.
                task.preemptions += 1
                yield from self._yield_cpu(task)
                continue
            slice_bound = remaining
            if self.time_slice is not None and self.time_slice < slice_bound:
                slice_bound = self.time_slice
            start = self.ctx.now
            woke = yield kwait(slice_bound, task._preempt_event)
            elapsed = self.ctx.now - start
            if elapsed > remaining:
                elapsed = remaining
            task.cpu_time += elapsed
            remaining = remaining - elapsed
            if woke is not None:
                # Preempted by a higher-priority task.
                task.preemptions += 1
                yield from self._yield_cpu(task)
            elif (remaining > ZERO_TIME and self.time_slice is not None
                  and self._equal_priority_ready(task)):
                # Round-robin rotation at the slice boundary.
                yield from self._yield_cpu(task)

    def _equal_priority_ready(self, task: Task) -> bool:
        return any(t.priority == task.priority for t in self._ready)

    def _yield_cpu(self, task: Task) -> Generator:
        """Go back to ready and wait to be dispatched again."""
        self.current = None
        self._make_ready(task)
        self._request_dispatch()
        yield from self._wait_dispatch(task, make_ready=False)

    def yield_cpu(self) -> Generator:
        """Voluntary yield (``taskDelay(0)``)."""
        task = self._require_current()
        if self._ready:
            yield from self._yield_cpu(task)
        return None

    def delay(self, duration: SimTime) -> Generator:
        """Sleep for ``duration``; the CPU runs other tasks meanwhile."""
        task = self._require_current()
        task.state = TaskState.SLEEPING
        self._release_cpu(task)
        if duration > ZERO_TIME:
            yield duration
        self._make_ready(task)
        if self.current is None:
            self._request_dispatch()
        yield from self._wait_dispatch(task, make_ready=False)

    def block_on(self, condition) -> Generator:
        """Block the current task on any kernel wait condition.

        ``condition`` is anything a kernel thread may yield: an event,
        an event or/and-list, a duration, or a ``wait(...)`` descriptor.
        The CPU is released while blocked.  Returns the event that woke
        the task (``None`` for timeouts), like a raw kernel wait.
        """
        task = self._require_current()
        task.state = TaskState.BLOCKED
        self._release_cpu(task)
        woke = yield condition
        self._make_ready(task)
        if self.current is None:
            self._request_dispatch()
        yield from self._wait_dispatch(task, make_ready=False)
        return woke

    def attach_isr(self, event: Event, handler: Callable,
                   name: str, priority: int = 0,
                   latency: SimTime = ZERO_TIME) -> Task:
        """Install an interrupt service routine for a kernel event.

        The ISR runs as a maximum-priority task: when ``event`` fires it
        preempts whatever task is executing (at its next preemption
        point) and runs ``handler`` — which may be a plain callable or a
        generator function using RTOS calls.  ``latency`` models the
        interrupt entry overhead as CPU time.
        """
        def isr_loop() -> Generator:
            while True:
                yield from self.block_on(event)
                if latency > ZERO_TIME:
                    yield from self.execute(latency)
                result = handler()
                if result is not None and hasattr(result, "send"):
                    yield from result

        return self.create_task(isr_loop, name, priority)

    # -- introspection ----------------------------------------------------------------------

    @property
    def ready_count(self) -> int:
        """Tasks ready and waiting for the CPU."""
        return len(self._ready)

    def task_by_name(self, name: str) -> Optional[Task]:
        """Look a task up by name, or None."""
        for task in self.tasks:
            if task.name == name:
                return task
        return None

    def all_finished(self) -> bool:
        """True when every task has finished."""
        return all(t.finished for t in self.tasks)
