"""``repro.rtos`` — a fixed-priority preemptive RTOS model.

The substrate for embedded-software generation (§4 of the paper): tasks
with CPU-time accounting, preemption, context-switch cost, semaphores,
mutexes, message queues, and ISR attachment.  Generated eSW entities run
as tasks on an :class:`Rtos` instance.
"""

from repro.rtos.core import Rtos, Task, TaskState
from repro.rtos.primitives import RtosMessageQueue, RtosMutex, RtosSemaphore

__all__ = [
    "Rtos",
    "RtosMessageQueue",
    "RtosMutex",
    "RtosSemaphore",
    "Task",
    "TaskState",
]
