"""RTOS IPC primitives: semaphores, mutexes, message queues.

These are the "behaviourally equivalent procedures based on RTOS
functions" that eSW generation substitutes for SystemC primitives
(kernel events -> semaphores, ``sc_fifo``/SHIP channels -> message
queues).  All blocking calls release the CPU through the RTOS scheduler,
so blocking a task lets lower-priority tasks run — the property that
distinguishes them from raw kernel events.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.rtos.core import Rtos, Task, TaskState


class _Waitable(SimObject):
    """Common blocking machinery: a wait queue of RTOS tasks."""

    def __init__(self, name, os: Rtos):
        super().__init__(name, os)
        self.os = os
        self._waiters: deque = deque()
        self._wake = Event(self, f"{self.full_name}.wake")

    def _block_current(self) -> Generator:
        task = self.os._require_current()
        task.state = TaskState.BLOCKED
        self._waiters.append(task)
        self.os._release_cpu(task)
        while task in self._waiters:
            yield self._wake
        self.os._make_ready(task)
        if self.os.current is None:
            self.os._request_dispatch()
        yield from self.os._wait_dispatch(task, make_ready=False)

    def _wake_one(self) -> None:
        if self._waiters:
            self._waiters.popleft()
            self._wake.notify()

    def _wake_all(self) -> None:
        if self._waiters:
            self._waiters.clear()
            self._wake.notify()


class RtosSemaphore(_Waitable):
    """Counting semaphore (``semTake`` / ``semGive``)."""

    def __init__(self, name, os: Rtos, initial: int = 0):
        super().__init__(name, os)
        if initial < 0:
            raise SimulationError(
                f"semaphore {name!r}: initial count must be >= 0"
            )
        self._count = initial

    def take(self) -> Generator:
        """Blocking decrement."""
        while self._count <= 0:
            yield from self._block_current()
        self._count -= 1

    def try_take(self) -> bool:
        """Non-blocking decrement attempt."""
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def give(self) -> None:
        """Increment; wakes the longest-waiting task.

        Callable from tasks *and* from hardware-side processes (e.g. an
        ISR giving a semaphore), like ``semGive`` from interrupt context.
        """
        self._count += 1
        self._wake_one()

    @property
    def count(self) -> int:
        """Current semaphore value."""
        return self._count


class RtosMutex(_Waitable):
    """Ownership mutex; only the owner may unlock.

    With ``priority_inheritance`` enabled (``SEM_INVERSION_SAFE``), a
    high-priority task blocking on the mutex temporarily boosts the
    owner to its priority, so a medium-priority CPU hog cannot starve
    the owner and indirectly the blocked high-priority task — the
    classic priority-inversion fix.
    """

    def __init__(self, name, os: Rtos, priority_inheritance: bool = False):
        super().__init__(name, os)
        self._owner: Optional[Task] = None
        self.priority_inheritance = priority_inheritance
        self._owner_base_priority: Optional[int] = None
        self.boosts = 0

    def lock(self) -> Generator:
        """Blocking lock; boosts the owner under inheritance."""
        task = self.os._require_current()
        while self._owner is not None:
            if (self.priority_inheritance
                    and task.priority < self._owner.priority):
                if self._owner_base_priority is None:
                    self._owner_base_priority = self._owner.priority
                self._owner.priority = task.priority
                self.boosts += 1
            yield from self._block_current()
        self._owner = task

    def unlock(self) -> None:
        """Release; only the owner may unlock."""
        task = self.os._require_current()
        if self._owner is not task:
            raise SimulationError(
                f"mutex {self.full_name}: unlock by non-owner "
                f"{task.name!r}"
            )
        if self._owner_base_priority is not None:
            task.priority = self._owner_base_priority
            self._owner_base_priority = None
        self._owner = None
        self._wake_one()

    @property
    def locked(self) -> bool:
        """True while a task owns the mutex."""
        return self._owner is not None

    @property
    def owner_name(self) -> Optional[str]:
        """Name of the owning task, or None."""
        return self._owner.name if self._owner else None


class RtosMessageQueue(_Waitable):
    """Bounded FIFO message queue (``msgQSend`` / ``msgQReceive``).

    ``put`` from non-task context (hardware processes, ISRs) is allowed
    when the queue has space — matching ``msgQSend(NO_WAIT)`` from an
    ISR; a full queue raises in that case since an ISR cannot block.
    """

    def __init__(self, name, os: Rtos, capacity: int = 16):
        super().__init__(name, os)
        if capacity < 1:
            raise SimulationError(
                f"message queue {name!r}: capacity must be >= 1"
            )
        self.capacity = capacity
        self._items: deque = deque()
        self._space = Event(self, f"{self.full_name}.space")

    def put(self, item) -> Generator:
        """Blocking send."""
        if self.os.current is None:
            if len(self._items) >= self.capacity:
                raise SimulationError(
                    f"message queue {self.full_name}: non-task put on a "
                    f"full queue"
                )
            self._items.append(item)
            self._wake_one()
            return
        while len(self._items) >= self.capacity:
            task = self.os._require_current()
            task.state = TaskState.BLOCKED
            self.os._release_cpu(task)
            yield self._space
            self.os._make_ready(task)
            if self.os.current is None:
                self.os._request_dispatch()
            yield from self.os._wait_dispatch(task, make_ready=False)
        self._items.append(item)
        self._wake_one()

    def try_put(self, item) -> bool:
        """Non-blocking send; False when full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._wake_one()
        return True

    def get(self) -> Generator:
        """Blocking receive; returns the item."""
        while not self._items:
            yield from self._block_current()
        item = self._items.popleft()
        self._space.notify()
        return item

    def try_get(self):
        """Non-blocking receive; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._space.notify()
        return True, item

    def __len__(self) -> int:
        return len(self._items)
