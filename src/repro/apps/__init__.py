"""``repro.apps`` — reference applications built on the public API.

Shared by the runnable examples, the integration tests, and the F1
benchmark: the JPEG-like block pipeline at all four abstraction levels
and the HW/SW-partitioned accelerator system.
"""

from repro.apps.hwsw_system import (
    HwSwSystem,
    HwTransformPE,
    build_hwsw_system,
)
from repro.apps.packet_switch import (
    EgressPE,
    ForwardingPE,
    IngressPE,
    PacketSwitchSystem,
    build_packet_switch,
    make_packet,
)
from repro.apps.pipeline import (
    BLOCK_SIZE,
    LEVEL_BUILDERS,
    PipelineSystem,
    SinkPE,
    SourcePE,
    TransformPE,
    build_cam,
    build_ccatb,
    build_prototype_level,
    build_pv,
    generate_block,
    quantize,
    reference_output,
    walsh_hadamard,
)

__all__ = [
    "BLOCK_SIZE",
    "EgressPE",
    "ForwardingPE",
    "HwSwSystem",
    "IngressPE",
    "PacketSwitchSystem",
    "build_packet_switch",
    "make_packet",
    "HwTransformPE",
    "LEVEL_BUILDERS",
    "PipelineSystem",
    "SinkPE",
    "SourcePE",
    "TransformPE",
    "build_cam",
    "build_ccatb",
    "build_hwsw_system",
    "build_prototype_level",
    "build_pv",
    "generate_block",
    "quantize",
    "reference_output",
    "walsh_hadamard",
]
