"""A packet-switch dataplane on a communication architecture.

The second domain application: an N-port packet switch whose input
links are SHIP connections mapped over a fabric (crossbar or shared
bus) by the :class:`~repro.flow.mapping.SystemMapper`.  Each input port
streams packets to a forwarding engine, which routes them by
destination port to per-output collectors.

Beyond being a realistic workload, the app stages the classic
**arbitration-fairness experiment**: let one port be a hog (zero
inter-packet gap) and compare how static-priority vs TDMA arbitration
shares the ingress fabric — priority starves the low-priority ports,
TDMA bounds everyone's service lag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel import Module, SimContext, SimTime, ns, us
from repro.cam import CrossbarCam, GenericBus, TdmaArbiter, make_arbiter
from repro.flow.mapping import SystemMapper
from repro.models import ProcessingElement
from repro.ship import ShipChannel, ShipIntArray, ShipMasterPort, ShipSlavePort
from repro.trace.stats import TimeStats

#: Packet layout inside the ShipIntArray:
#: [dst_port, src_port, seq, sent_ns, *payload]
HEADER_WORDS = 4


def make_packet(dst: int, src: int, seq: int, sent_ns: int = 0,
                payload_words: int = 4) -> List[int]:
    """Build one packet's words (deterministic payload)."""
    payload = [(src * 1000 + seq * 7 + i) % 977
               for i in range(payload_words)]
    return [dst, src, seq, sent_ns] + payload


class IngressPE(ProcessingElement):
    """One input port: streams packets into the switch."""

    def __init__(self, name, parent, chan, port_id: int, packets: int,
                 ports: int, gap: SimTime, payload_words: int = 4):
        super().__init__(name, parent)
        self.port_id = port_id
        self.packets = packets
        self.ports = ports
        self.gap = gap
        self.payload_words = payload_words
        self.sent = 0
        self.finished_at: Optional[SimTime] = None
        self.out = self.ship_port("out", ShipMasterPort)
        self.out.bind(chan)
        self.add_thread(self.run)

    def run(self):
        """Send ``packets`` packets round-robining the destinations."""
        for seq in range(self.packets):
            if self.gap > ns(0):
                yield self.gap
            dst = (self.port_id + 1 + seq) % self.ports
            packet = make_packet(dst, self.port_id, seq,
                                 int(self.ctx.now.to("ns")),
                                 self.payload_words)
            yield from self.out.send(ShipIntArray(packet))
            self.sent += 1
        self.finished_at = self.ctx.now


class ForwardingPE(ProcessingElement):
    """The switch core: one forwarding thread per input port."""

    def __init__(self, name, parent, in_chans, out_chans,
                 lookup_time: SimTime = ns(50)):
        super().__init__(name, parent)
        self.lookup_time = lookup_time
        self.forwarded = 0
        self.drops = 0
        self._outs = []
        for i, chan in enumerate(out_chans):
            port = self.ship_port(f"out{i}", ShipMasterPort)
            port.bind(chan)
            self._outs.append(port)
        for i, chan in enumerate(in_chans):
            port = self.ship_port(f"in{i}", ShipSlavePort)
            port.bind(chan)
            self.add_thread(
                lambda p=port: self._forward(p), name=f"fwd{i}"
            )

    def _forward(self, in_port):
        while True:
            packet = yield from in_port.recv()
            yield self.lookup_time
            dst = packet.values[0]
            if 0 <= dst < len(self._outs):
                yield from self._outs[dst].send(packet)
                self.forwarded += 1
            else:
                self.drops += 1


class EgressPE(ProcessingElement):
    """One output port: collects packets and records per-flow order."""

    def __init__(self, name, parent, chan, port_id: int):
        super().__init__(name, parent)
        self.port_id = port_id
        self.packets: List[List[int]] = []
        #: per source: sequence numbers in arrival order
        self.flows: Dict[int, List[int]] = {}
        #: per source: delivery latency statistics
        self.latency_by_src: Dict[int, TimeStats] = {}
        self.inp = self.ship_port("inp", ShipSlavePort)
        self.inp.bind(chan)
        self.add_thread(self.run)

    def run(self):
        """Collect packets forever."""
        while True:
            packet = yield from self.inp.recv()
            words = packet.values
            self.packets.append(words)
            src, seq, sent_ns = words[1], words[2], words[3]
            self.flows.setdefault(src, []).append(seq)
            latency_ns = int(self.ctx.now.to("ns")) - sent_ns
            self.latency_by_src.setdefault(src, TimeStats()).add(
                ns(max(latency_ns, 0))
            )


@dataclass
class PacketSwitchSystem:
    """Handle to a built switch."""

    ctx: SimContext
    ingress: List[IngressPE]
    forwarder: ForwardingPE
    egress: List[EgressPE]
    fabric: object

    @property
    def total_received(self) -> int:
        """Packets that reached an output port."""
        return sum(len(e.packets) for e in self.egress)

    def flows_in_order(self) -> bool:
        """Per-flow FIFO: every (src -> dst) flow arrived in seq order."""
        for egress in self.egress:
            for seqs in egress.flows.values():
                if seqs != sorted(seqs):
                    return False
        return True

    def ingress_finish_times(self) -> Dict[int, float]:
        """Per input port: when its last packet was handed off (ns)."""
        return {
            pe.port_id: pe.finished_at.to("ns")
            for pe in self.ingress
            if pe.finished_at is not None
        }

    def per_source_mean_latency_ns(self) -> Dict[int, float]:
        """Mean ingress->egress delivery latency per source port."""
        totals: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for egress in self.egress:
            for src, stats in egress.latency_by_src.items():
                totals[src] = totals.get(src, 0.0) + stats.total_ns
                counts[src] = counts.get(src, 0) + stats.count
        return {
            src: totals[src] / counts[src]
            for src in totals if counts[src]
        }


def build_packet_switch(
    ports: int = 4,
    packets_per_port: int = 12,
    fabric_kind: str = "crossbar",
    arbiter: str = "round-robin",
    hog_port: Optional[int] = None,
    gap: SimTime = ns(300),
    payload_words: int = 4,
    tdma_slot_cycles: int = 8,
) -> PacketSwitchSystem:
    """Build the switch with ingress links mapped over a fabric.

    ``hog_port`` (if given) sends with zero gap, saturating its link —
    the input for the fairness experiment.
    """
    ctx = SimContext("packet_switch")
    top = Module("top", ctx=ctx)
    if fabric_kind == "crossbar":
        fabric = CrossbarCam("fabric", top, clock_period=ns(10))
    else:
        names = [f"in{i}_lnk_master" for i in range(ports)]
        if arbiter == "tdma":
            arb = TdmaArbiter(names, slot_cycles=tdma_slot_cycles)
        else:
            arb = make_arbiter(arbiter)
        fabric = GenericBus("fabric", top, clock_period=ns(10),
                            arbiter=arb)
    mapper = SystemMapper(top, fabric, poll_interval=ns(100),
                          capacity_words=16)
    # port index doubles as bus priority (port 0 wins under
    # static-priority arbitration — the fairness experiment's knob)
    in_links = [
        mapper.connect(f"in{i}", bus_priority=i) for i in range(ports)
    ]
    # output links stay local point-to-point channels (egress is on the
    # same die as the forwarder); the fabric carries the ingress side
    out_chans = [ShipChannel(f"out{i}", top) for i in range(ports)]

    ingress = [
        IngressPE(
            f"ingress{i}", top, in_links[i].master_attach, i,
            packets_per_port, ports,
            gap=ns(0) if i == hog_port else gap,
            payload_words=payload_words,
        )
        for i in range(ports)
    ]
    forwarder = ForwardingPE(
        "switch", top,
        [link.slave_attach for link in in_links],
        out_chans,
    )
    egress = [
        EgressPE(f"egress{i}", top, out_chans[i], i)
        for i in range(ports)
    ]
    return PacketSwitchSystem(
        ctx=ctx, ingress=ingress, forwarder=forwarder, egress=egress,
        fabric=fabric,
    )
