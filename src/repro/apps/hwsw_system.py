"""A HW/SW-partitioned system: software pipeline, hardware accelerator.

The embedded-system shape the paper's introduction motivates: control
and I/O in software on an embedded CPU, the compute kernel in user
hardware, connected over CoreConnect through the generic SHIP-based
HW/SW interface.  The software side drives the accelerator with the SW
communication library (device driver + SHIP calls); the hardware side is
an ordinary SHIP slave PE that never learns its peer lives in software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel import Module, SimContext, SimTime, ns, us
from repro.cam import PlbBus
from repro.hwsw import IrqController, SwMasterLink, build_sw_master_interface
from repro.models import ProcessingElement
from repro.rtos import Rtos
from repro.ship import ShipIntArray, ShipSlavePort
from repro.apps.pipeline import (
    generate_block,
    quantize,
    reference_output,
    walsh_hadamard,
)


class HwTransformPE(ProcessingElement):
    """The hardware accelerator: SHIP slave running the transform."""

    def __init__(self, name, parent, chan, compute_time=ns(300)):
        super().__init__(name, parent)
        self.compute_time = compute_time
        self.blocks_processed = 0
        self.port = self.ship_port("port", ShipSlavePort)
        self.port.bind(chan)
        self.add_thread(self.run)

    def run(self):
        """Serve transform requests forever."""
        while True:
            block = yield from self.port.recv()
            yield self.compute_time
            self.blocks_processed += 1
            yield from self.port.reply(
                ShipIntArray(walsh_hadamard(block.values))
            )


@dataclass
class HwSwSystem:
    """Handle to a built HW/SW system."""

    ctx: SimContext
    os: Rtos
    link: SwMasterLink
    accelerator: HwTransformPE
    results: List[List[int]]
    irq_controller: Optional[IrqController] = None

    def outputs(self) -> List[List[int]]:
        """The quantized blocks recorded so far."""
        return list(self.results)

    def golden(self, blocks: int) -> List[List[int]]:
        """Expected output for ``blocks`` blocks."""
        return reference_output(blocks)


def build_hwsw_system(
    blocks: int = 8,
    use_irq: bool = True,
    poll_interval: SimTime = ns(200),
    access_overhead: SimTime = ns(100),
    context_switch: SimTime = ns(500),
    sw_compute: SimTime = us(1),
    quant_step: int = 8,
    capacity_words: int = 64,
) -> HwSwSystem:
    """Build the partitioned system; run ``system.ctx.run(...)`` next."""
    ctx = SimContext("hwsw_system")
    top = Module("top", ctx=ctx)
    plb = PlbBus("plb", top)
    os = Rtos("os", top, context_switch=context_switch)
    irqc = IrqController("irqc", top, lines=1) if use_irq else None
    link = build_sw_master_interface(
        "acc", top, plb, os, 0x80000,
        capacity_words=capacity_words,
        use_irq=use_irq,
        poll_interval=poll_interval,
        access_overhead=access_overhead,
        irq_controller=irqc,
    )
    accelerator = HwTransformPE("hw_dct", top, link.hw_channel)
    results: List[List[int]] = []

    def sw_main():
        """Source + sink as embedded software (one application task)."""
        for i in range(blocks):
            yield from os.execute(sw_compute)       # prepare the block
            reply = yield from link.sw_port.request(
                ShipIntArray(generate_block(i))
            )
            yield from os.execute(sw_compute // 2)  # post-process
            results.append(quantize(reply.values, quant_step))

    os.create_task(sw_main, "app_main", priority=5)
    return HwSwSystem(
        ctx=ctx, os=os, link=link, accelerator=accelerator,
        results=results, irq_controller=irqc,
    )
