"""A JPEG-encoder-like block pipeline, buildable at every flow level.

The canonical embedded application the TLM literature motivates with:
a source streams pixel blocks, a transform stage runs an integer
Walsh-Hadamard transform (a stand-in for the DCT with exact integer
arithmetic, so equivalence checks are bit-exact), and a sink quantizes
and records the result.

``build_pv`` / ``build_ccatb`` / ``build_cam`` / ``build_prototype``
construct the *same* pipeline at the four levels of Figure 1:

* **PV** (component-assembly): PEs on untimed SHIP channels;
* **CCATB**: the same PEs, channels annotated with transaction timing;
* **CAM**: the same PEs, channels carried over a CoreConnect PLB through
  the SHIP wrappers — real bus traffic, mailboxes, arbitration;
* **prototype**: communication refined to shared-memory staging over the
  pin-accurate RTL fabric through accessors (how the synthesized
  hardware actually moves bulk data), with the same transform math.

The PE behaviour code is shared across the first three levels unchanged
— the paper's core claim — and the arithmetic is shared by all four, so
every level must produce identical sink output.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.kernel import Clock, Module, SimContext, ns, ps
from repro.esw import ExecuteFor
from repro.models import ProcessingElement, build_ship_over_bus
from repro.cam import MemorySlave, PlbBus
from repro.ocp import OcpCmd, OcpPinBundle, OcpPinMaster, OcpRequest
from repro.accessors import SlaveMapEntry, build_prototype
from repro.ship import (
    ShipChannel,
    ShipIntArray,
    ShipMasterPort,
    ShipSlavePort,
    ShipTiming,
)

#: Values per block (a 4x4 tile).
BLOCK_SIZE = 16


def generate_block(index: int) -> List[int]:
    """Deterministic test-pattern block (pseudo image data)."""
    return [((index * 31 + i * 7) % 251) - 125 for i in range(BLOCK_SIZE)]


def walsh_hadamard(block: List[int]) -> List[int]:
    """4x4 integer Walsh-Hadamard transform (rows then columns)."""
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"block must have {BLOCK_SIZE} values")

    def butterfly4(a, b, c, d):
        s0, s1 = a + b, a - b
        s2, s3 = c + d, c - d
        return [s0 + s2, s1 + s3, s0 - s2, s1 - s3]

    rows = [
        butterfly4(*block[r * 4:(r + 1) * 4]) for r in range(4)
    ]
    out = [0] * BLOCK_SIZE
    for c in range(4):
        col = butterfly4(rows[0][c], rows[1][c], rows[2][c], rows[3][c])
        for r in range(4):
            out[r * 4 + c] = col[r]
    return out


def quantize(block: List[int], step: int = 8) -> List[int]:
    """Quantization with round-toward-zero, as a fixed divider would."""
    return [int(v / step) for v in block]


def reference_output(blocks: int, quant_step: int = 8) -> List[List[int]]:
    """Golden model: what the sink must record for ``blocks`` blocks."""
    return [
        quantize(walsh_hadamard(generate_block(i)), quant_step)
        for i in range(blocks)
    ]


# ---------------------------------------------------------------------------
# SHIP processing elements (shared by PV / CCATB / CAM levels)
# ---------------------------------------------------------------------------


class SourcePE(ProcessingElement):
    """Streams blocks into the pipeline."""

    def __init__(self, name, parent, out_chan, blocks: int,
                 compute_time=ns(200)):
        super().__init__(name, parent)
        self.blocks = blocks
        self.compute_time = compute_time
        self.out = self.ship_port("out", ShipMasterPort)
        self.out.bind(out_chan)
        self.add_thread(self.run)

    def run(self):
        """Emit ``blocks`` generated blocks downstream."""
        for i in range(self.blocks):
            yield ExecuteFor(self.compute_time)
            yield from self.out.send(ShipIntArray(generate_block(i)))


class TransformPE(ProcessingElement):
    """Walsh-Hadamard transform stage."""

    def __init__(self, name, parent, in_chan, out_chan, blocks: int,
                 compute_time=ns(500)):
        super().__init__(name, parent)
        self.blocks = blocks
        self.compute_time = compute_time
        self.inp = self.ship_port("inp", ShipSlavePort)
        self.inp.bind(in_chan)
        self.out = self.ship_port("out", ShipMasterPort)
        self.out.bind(out_chan)
        self.add_thread(self.run)

    def run(self):
        """Transform each received block and forward it."""
        for _ in range(self.blocks):
            block = yield from self.inp.recv()
            yield ExecuteFor(self.compute_time)
            yield from self.out.send(
                ShipIntArray(walsh_hadamard(block.values))
            )


class SinkPE(ProcessingElement):
    """Quantizes and records the final blocks."""

    def __init__(self, name, parent, in_chan, blocks: int,
                 quant_step: int = 8, compute_time=ns(100)):
        super().__init__(name, parent)
        self.blocks = blocks
        self.quant_step = quant_step
        self.compute_time = compute_time
        self.results: List[List[int]] = []
        self.inp = self.ship_port("inp", ShipSlavePort)
        self.inp.bind(in_chan)
        self.add_thread(self.run)

    def run(self):
        """Quantize and record each received block."""
        for _ in range(self.blocks):
            block = yield from self.inp.recv()
            yield ExecuteFor(self.compute_time)
            self.results.append(quantize(block.values, self.quant_step))


class PipelineSystem:
    """Handle to a built pipeline: context plus the sink probe."""

    def __init__(self, ctx: SimContext, sink: SinkPE, extras=None):
        self.ctx = ctx
        self.sink = sink
        self.extras = extras or {}

    def outputs(self) -> List[List[int]]:
        """The sink's recorded blocks."""
        return list(self.sink.results)


# ---------------------------------------------------------------------------
# Level builders
# ---------------------------------------------------------------------------


def build_pv(blocks: int = 16) -> PipelineSystem:
    """Component-assembly model: untimed SHIP channels."""
    ctx = SimContext("pipeline_pv")
    top = Module("top", ctx=ctx)
    c1 = ShipChannel("c1", top)
    c2 = ShipChannel("c2", top)
    SourcePE("source", top, c1, blocks)
    TransformPE("transform", top, c1, c2, blocks)
    sink = SinkPE("sink", top, c2, blocks)
    return PipelineSystem(ctx, sink)


def build_ccatb(blocks: int = 16,
                timing: Optional[ShipTiming] = None) -> PipelineSystem:
    """CCATB model: the same PEs on timing-annotated channels."""
    ctx = SimContext("pipeline_ccatb")
    top = Module("top", ctx=ctx)
    # The annotation must under-estimate the real link: the CAM-level
    # wrapper overlaps bus transfers with PE computation, while the
    # CCATB channel blocks the sender for the whole transfer.  Keeping
    # the estimate below the measured per-message PLB cost preserves
    # the refinement ordering untimed <= CCATB <= CAM.
    link_timing = timing or ShipTiming(base_latency=ns(10),
                                       per_byte=ps(400))
    c1 = ShipChannel("c1", top, timing=link_timing)
    c2 = ShipChannel("c2", top, timing=link_timing)
    SourcePE("source", top, c1, blocks)
    TransformPE("transform", top, c1, c2, blocks)
    sink = SinkPE("sink", top, c2, blocks)
    return PipelineSystem(ctx, sink)


def build_cam(blocks: int = 16, poll_interval=ns(100),
              use_irq: bool = False) -> PipelineSystem:
    """CAM level: SHIP channels carried over a CoreConnect PLB."""
    ctx = SimContext("pipeline_cam")
    top = Module("top", ctx=ctx)
    plb = PlbBus("plb", top)
    link1 = build_ship_over_bus("l1", top, plb, 0x10000,
                                capacity_words=64, use_irq=use_irq,
                                poll_interval=poll_interval,
                                master_priority=1)
    link2 = build_ship_over_bus("l2", top, plb, 0x20000,
                                capacity_words=64, use_irq=use_irq,
                                poll_interval=poll_interval,
                                master_priority=2)
    SourcePE("source", top, link1.master_channel, blocks)

    class BridgedTransform(TransformPE):
        pass

    BridgedTransform("transform", top, link1.slave_channel,
                     link2.master_channel, blocks)
    sink = SinkPE("sink", top, link2.slave_channel, blocks)
    return PipelineSystem(ctx, sink, extras={"plb": plb,
                                             "links": (link1, link2)})


def build_prototype_level(blocks: int = 16) -> PipelineSystem:
    """Pin-accurate prototype: shared-memory staging over the RTL
    fabric through accessors.

    Each PE is refined to a pin-level OCP master; blocks move through
    two memory regions (A: source->transform, B: transform->sink) with
    one-word flags for flow control — the canonical refinement of a
    message-passing channel into the prototype's shared memory.
    """
    ctx = SimContext("pipeline_proto")
    top = Module("top", ctx=ctx)
    clk = Clock("clk", top, period=ns(10))
    mem = MemorySlave("mem", top, size=1 << 12, read_wait=1,
                      write_wait=1)
    bundles = {
        name: OcpPinBundle(f"{name}_pins", top, clock=clk)
        for name in ("source", "transform", "sink")
    }
    build_prototype("proto", top, clk, bundles,
                    [SlaveMapEntry(mem, 0, 1 << 12)], fabric="plb",
                    priorities={"source": 2, "transform": 1, "sink": 0})
    masters = {
        name: OcpPinMaster(f"{name}_drv", top, bundle=bundle)
        for name, bundle in bundles.items()
    }

    region_a, flag_a = 0x100, 0x0
    region_b, flag_b = 0x200, 0x4

    def write_block(master, base, values):
        yield from master.transport(OcpRequest(
            OcpCmd.WR, base, data=[v & 0xFFFFFFFF for v in values],
            burst_length=len(values),
        ))

    def read_block(master, base, count):
        resp = yield from master.transport(OcpRequest(
            OcpCmd.RD, base, burst_length=count,
        ))
        # words are stored unsigned; restore the sign
        return [v - (1 << 32) if v >= (1 << 31) else v
                for v in resp.data]

    def read_flag(master, addr):
        resp = yield from master.transport(OcpRequest(
            OcpCmd.RD, addr, burst_length=1,
        ))
        return resp.data[0]

    def write_flag(master, addr, value):
        yield from master.transport(OcpRequest(
            OcpCmd.WR, addr, data=[value], burst_length=1,
        ))

    def poll_flag(master, addr, want):
        while True:
            value = yield from read_flag(master, addr)
            if value == want:
                return
            yield clk.period * 4

    class ProtoSource(Module):
        def __init__(self, name, parent):
            super().__init__(name, parent)
            self.add_thread(self.run)

        def run(self):
            m = masters["source"]
            for i in range(blocks):
                yield ns(200)
                yield from poll_flag(m, flag_a, 0)
                yield from write_block(m, region_a, generate_block(i))
                yield from write_flag(m, flag_a, 1)

    class ProtoTransform(Module):
        def __init__(self, name, parent):
            super().__init__(name, parent)
            self.add_thread(self.run)

        def run(self):
            m = masters["transform"]
            for _ in range(blocks):
                yield from poll_flag(m, flag_a, 1)
                block = yield from read_block(m, region_a, BLOCK_SIZE)
                yield from write_flag(m, flag_a, 0)
                yield ns(500)
                transformed = walsh_hadamard(block)
                yield from poll_flag(m, flag_b, 0)
                yield from write_block(m, region_b, transformed)
                yield from write_flag(m, flag_b, 1)

    class ProtoSink(Module):
        def __init__(self, name, parent):
            super().__init__(name, parent)
            self.results: List[List[int]] = []
            self.add_thread(self.run)

        def run(self):
            m = masters["sink"]
            for _ in range(blocks):
                yield from poll_flag(m, flag_b, 1)
                block = yield from read_block(m, region_b, BLOCK_SIZE)
                yield from write_flag(m, flag_b, 0)
                yield ns(100)
                self.results.append(quantize(block))
            ctx.stop()

    ProtoSource("source_pe", top)
    ProtoTransform("transform_pe", top)
    sink = ProtoSink("sink_pe", top)
    return PipelineSystem(ctx, sink)


#: Level name -> builder, in refinement order.
LEVEL_BUILDERS: List[Tuple[str, Callable[[int], PipelineSystem]]] = [
    ("component-assembly", build_pv),
    ("ccatb", build_ccatb),
    ("cam", build_cam),
    ("prototype", build_prototype_level),
]
