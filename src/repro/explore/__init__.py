"""``repro.explore`` — communication architecture exploration.

Traffic generation, design-space description, the build/run/measure
loop, and Pareto analysis, powering the exploration experiment (E3).
"""

from repro.explore.runner import (
    BootSpec,
    ExplorationResult,
    FaultSpec,
    FaultSummary,
    MasterMetrics,
    PointResult,
    WARM_START_KEY,
    build_fabric,
    decode_payload,
    explore,
    format_table,
    materialize_boot_checkpoint,
    pareto_front,
    point_regions,
    results_to_csv,
    run_payload,
    run_payload_batch,
    run_point,
)
from repro.explore.space import (
    ARBITERS,
    FABRICS,
    ArchitectureConfig,
    DesignSpace,
)
from repro.explore.workload import (
    PATTERNS,
    SUBSTREAMS,
    MasterTrafficSpec,
    TrafficMaster,
    standard_workloads,
    substream_seed,
)

__all__ = [
    "ARBITERS",
    "ArchitectureConfig",
    "BootSpec",
    "DesignSpace",
    "ExplorationResult",
    "WARM_START_KEY",
    "FABRICS",
    "FaultSpec",
    "FaultSummary",
    "MasterMetrics",
    "PointResult",
    "MasterTrafficSpec",
    "PATTERNS",
    "SUBSTREAMS",
    "TrafficMaster",
    "substream_seed",
    "build_fabric",
    "decode_payload",
    "explore",
    "format_table",
    "materialize_boot_checkpoint",
    "pareto_front",
    "point_regions",
    "results_to_csv",
    "run_payload",
    "run_payload_batch",
    "run_point",
    "standard_workloads",
]
