"""Exploration runner: build, simulate, measure one config at a time.

The paper's claim is that CAMs enable *fast yet timing-accurate
communication architecture exploration*; this runner is the loop that
claim powers.  For each :class:`~repro.explore.space.ArchitectureConfig`
it builds a fresh simulation (fabric + memories + traffic masters), runs
it to workload completion, and extracts the metrics designers sweep on:
per-master latency, aggregate throughput, and fabric utilization —
plus wall-clock cost, so exploration speed itself is measurable (E1/E3).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.kernel.context import SimContext
from repro.kernel.errors import SimulationError
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime, us
from repro.cam.arbiters import make_arbiter
from repro.cam.amba import AhbBus
from repro.cam.bus import GenericBus
from repro.cam.coreconnect import OpbBus, PlbBus
from repro.cam.crossbar import CrossbarCam
from repro.cam.memory import MemorySlave
from repro.explore.space import ArchitectureConfig
from repro.explore.workload import MasterTrafficSpec, TrafficMaster


@dataclass
class MasterMetrics:
    """Measured behaviour of one traffic master.

    ``latency_series`` is the per-transaction latency series (ns
    floats, completion order), present only when the point ran with
    ``record_series=True`` — the raw material of steady-state
    estimation in :mod:`repro.stats.steady`.
    """

    name: str
    completed: int
    errors: int
    bytes_done: int
    mean_latency_ns: float
    max_latency_ns: float
    latency_series: Optional[List[float]] = None

    def to_dict(self) -> dict:
        """JSON-able dict of every field.

        The series key is emitted only when a series was recorded, so
        series-free results keep their historical (compact) shape.
        """
        data = {
            "name": self.name,
            "completed": self.completed,
            "errors": self.errors,
            "bytes_done": self.bytes_done,
            "mean_latency_ns": self.mean_latency_ns,
            "max_latency_ns": self.max_latency_ns,
        }
        if self.latency_series is not None:
            data["latency_series"] = list(self.latency_series)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MasterMetrics":
        """Rebuild from :meth:`to_dict` output."""
        series = data.get("latency_series")
        return cls(
            name=data["name"],
            completed=data["completed"],
            errors=data["errors"],
            bytes_done=data["bytes_done"],
            mean_latency_ns=data["mean_latency_ns"],
            max_latency_ns=data["max_latency_ns"],
            latency_series=None if series is None else list(series),
        )


@dataclass
class BootSpec:
    """The warm-up phase a checkpointable design point boots through.

    ``specs`` drive the fabric from time zero (cache/arbiter/statistics
    warming); they must finish before ``until``, the boot horizon at
    which the platform is quiescent and a checkpoint can be captured.
    Measured traffic (the point's real workload) starts one
    femtosecond *after* the horizon, so a run restored from the boot
    checkpoint replays the measured phase bit-identically to a cold run
    that simulated the boot inline.
    """

    specs: Sequence[MasterTrafficSpec]
    until: SimTime

    def __post_init__(self):
        if not isinstance(self.specs, tuple):
            self.specs = tuple(self.specs)
        if self.until._fs <= 0:
            raise ValueError("boot horizon must be positive")

    def to_dict(self) -> dict:
        """JSON-able dict (``until`` as integer femtoseconds)."""
        return {
            "until_fs": self.until.femtoseconds,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BootSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            specs=tuple(
                MasterTrafficSpec.from_dict(s) for s in data["specs"]
            ),
            until=SimTime(data["until_fs"]),
        )


@dataclass
class FaultSpec:
    """Fault rates for one exploration point (``run_point(faults=...)``).

    Translated into a seeded :class:`repro.faults.FaultPlan` plus
    injectors on the point's private fabric and memories, so a sweep can
    vary fault pressure exactly like any other architecture parameter.
    """

    seed: int = 1
    bus_error_rate: float = 0.0
    decode_miss_rate: float = 0.0
    mem_flip_period: Optional[SimTime] = None

    @property
    def active(self) -> bool:
        """True when any fault kind is enabled."""
        return bool(
            self.bus_error_rate
            or self.decode_miss_rate
            or self.mem_flip_period is not None
        )

    def to_dict(self) -> dict:
        """JSON-able dict (``mem_flip_period`` as integer fs or None)."""
        return {
            "seed": self.seed,
            "bus_error_rate": self.bus_error_rate,
            "decode_miss_rate": self.decode_miss_rate,
            "mem_flip_period_fs": (
                None if self.mem_flip_period is None
                else self.mem_flip_period.femtoseconds
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` output."""
        period_fs = data.get("mem_flip_period_fs")
        return cls(
            seed=data["seed"],
            bus_error_rate=data["bus_error_rate"],
            decode_miss_rate=data["decode_miss_rate"],
            mem_flip_period=None if period_fs is None
            else SimTime(period_fs),
        )


@dataclass(frozen=True)
class FaultSummary:
    """Serializable read-only view of a point's fault activity.

    A live :class:`repro.faults.FaultPlan` does not round-trip through
    JSON (it holds an RNG and the full record log); what sweep reports
    and golden files consume is the per-kind fault counts and the
    plan's SHA-256 digest.  ``FaultSummary`` carries exactly those, with
    the same accessor names as ``FaultPlan``, so code rendering sweep
    output works identically on a freshly-computed result (live plan)
    and a cache-reconstituted one (summary).
    """

    counts: Dict[str, int]
    sha256: str

    def counts_by_kind(self) -> Dict[str, int]:
        """``{kind: count}`` over the recorded faults, sorted by kind."""
        return dict(sorted(self.counts.items()))

    def count(self, kind: Optional[str] = None) -> int:
        """Number of injected faults, optionally of one kind."""
        if kind is None:
            return sum(self.counts.values())
        return self.counts.get(kind, 0)

    def digest(self) -> str:
        """SHA-256 digest of the originating plan's full summary."""
        return self.sha256

    @classmethod
    def capture(cls, fault_plan) -> Optional["FaultSummary"]:
        """Summarize a ``FaultPlan`` (or pass a summary through)."""
        if fault_plan is None:
            return None
        if isinstance(fault_plan, FaultSummary):
            return fault_plan
        return cls(
            counts=dict(fault_plan.counts_by_kind()),
            sha256=fault_plan.digest(),
        )


@dataclass
class ExplorationResult:
    """All metrics for one design point."""

    config: ArchitectureConfig
    workload: str
    masters: List[MasterMetrics]
    sim_time_ns: float
    wall_seconds: float
    utilization: float
    total_bytes: int
    #: the point's FaultPlan when run with ``faults=``, else None
    fault_plan: Optional[object] = None

    @property
    def mean_latency_ns(self) -> float:
        """Completion-weighted mean latency over all masters."""
        total = sum(m.mean_latency_ns * m.completed for m in self.masters)
        count = sum(m.completed for m in self.masters)
        return total / count if count else 0.0

    @property
    def throughput_mbps(self) -> float:
        """Aggregate throughput in MB/s of simulated time."""
        if self.sim_time_ns <= 0:
            return 0.0
        return self.total_bytes / (self.sim_time_ns * 1e-9) / 1e6

    @property
    def all_done(self) -> bool:
        """True when no master saw an error response."""
        return all(m.errors == 0 for m in self.masters)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tables and CSV export."""
        return {
            "config": self.config.name,
            "workload": self.workload,
            "mean_latency_ns": round(self.mean_latency_ns, 2),
            "throughput_mbps": round(self.throughput_mbps, 2),
            "utilization": round(self.utilization, 4),
            "sim_time_us": round(self.sim_time_ns / 1e3, 2),
            "wall_s": round(self.wall_seconds, 4),
        }

    def to_dict(self) -> dict:
        """Canonical JSON-able dict of the whole result.

        SimTime-bearing fields serialize as integer femtoseconds (via
        the nested ``to_dict`` calls) and a live ``fault_plan`` is
        reduced to its :class:`FaultSummary`, so the output is stable
        across processes and Python versions — the representation the
        sweep cache stores and workers ship back.
        """
        summary = FaultSummary.capture(self.fault_plan)
        return {
            "config": self.config.to_dict(),
            "workload": self.workload,
            "masters": [m.to_dict() for m in self.masters],
            "sim_time_ns": self.sim_time_ns,
            "wall_seconds": self.wall_seconds,
            "utilization": self.utilization,
            "total_bytes": self.total_bytes,
            "fault": (
                None if summary is None
                else {"counts": summary.counts_by_kind(),
                      "sha256": summary.sha256}
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExplorationResult":
        """Rebuild from :meth:`to_dict` output.

        The ``fault_plan`` slot comes back as a :class:`FaultSummary`
        (counts + digest), not a live plan — enough for every report
        and golden-file consumer.
        """
        fault = data.get("fault")
        return cls(
            config=ArchitectureConfig.from_dict(data["config"]),
            workload=data["workload"],
            masters=[MasterMetrics.from_dict(m) for m in data["masters"]],
            sim_time_ns=data["sim_time_ns"],
            wall_seconds=data["wall_seconds"],
            utilization=data["utilization"],
            total_bytes=data["total_bytes"],
            fault_plan=(
                None if fault is None
                else FaultSummary(counts=dict(fault["counts"]),
                                  sha256=fault["sha256"])
            ),
        )


def _build_arbiter(config: ArchitectureConfig,
                   specs: Sequence[MasterTrafficSpec]):
    if config.arbiter == "tdma":
        return make_arbiter(
            "tdma",
            schedule=[s.name for s in specs],
            slot_cycles=config.tdma_slot_cycles,
        )
    return make_arbiter(config.arbiter)


def build_fabric(config: ArchitectureConfig, parent: Module,
                 specs: Sequence[MasterTrafficSpec], metrics=None):
    """Instantiate the fabric a config describes.

    ``metrics`` optionally hands the bus fabrics a
    :class:`repro.obs.MetricsRegistry` to publish into (the crossbar
    keeps its own per-path accounting and ignores it).
    """
    arbiter = _build_arbiter(config, specs)
    if config.fabric == "plb":
        return PlbBus("fabric", parent, clock_period=config.clock_period,
                      arbiter=arbiter, metrics=metrics)
    if config.fabric == "opb":
        return OpbBus("fabric", parent, clock_period=config.clock_period,
                      arbiter=arbiter, metrics=metrics)
    if config.fabric == "ahb":
        return AhbBus("fabric", parent, clock_period=config.clock_period,
                      arbiter=arbiter, metrics=metrics)
    if config.fabric == "generic":
        return GenericBus("fabric", parent,
                          clock_period=config.clock_period,
                          arbiter=arbiter, metrics=metrics)
    # crossbar: a fresh arbiter per path
    return CrossbarCam(
        "fabric", parent, clock_period=config.clock_period,
        arbiter_factory=lambda: _build_arbiter(config, specs),
    )


def _clamped_spec(spec: MasterTrafficSpec,
                  config: ArchitectureConfig) -> MasterTrafficSpec:
    """The spec with its burst clamped to the config's ``max_burst``."""
    if spec.burst_length <= config.max_burst:
        return spec
    return MasterTrafficSpec(
        name=spec.name, pattern=spec.pattern, base=spec.base,
        size=spec.size, burst_length=config.max_burst,
        gap=spec.gap, read_fraction=spec.read_fraction,
        transactions=spec.transactions, priority=spec.priority,
        word_bytes=spec.word_bytes,
    )


def point_regions(specs: Sequence[MasterTrafficSpec],
                  boot: Optional[BootSpec] = None) -> List[tuple]:
    """Ordered distinct ``(base, size)`` regions of a design point.

    Boot regions come first so the boot-only capture context and the
    full (measured) context create memories in the same order under the
    same names — the alignment a checkpoint restore relies on.  The
    region list is part of a point's checkpoint family identity.
    """
    regions: List[tuple] = []
    ordered = list(boot.specs) if boot is not None else []
    ordered.extend(specs)
    for spec in ordered:
        if (spec.base, spec.size) not in regions:
            regions.append((spec.base, spec.size))
    return regions


def _build_point(
    config: ArchitectureConfig,
    specs: Sequence[MasterTrafficSpec],
    seed: int,
    memory_read_wait: int,
    memory_write_wait: int,
    metrics=None,
    observer=None,
    faults: Optional[FaultSpec] = None,
    rng_streams: bool = False,
    record_series: bool = False,
    boot: Optional[BootSpec] = None,
    include_measured: bool = True,
):
    """Instantiate one design point's simulation.

    Returns ``(ctx, masters, fabric, fault_plan)`` where ``masters``
    are the *measured* traffic masters (empty when
    ``include_measured=False``, the boot-checkpoint capture form).  The
    boot-only build is an exact structural prefix of the full build —
    same fabric, memories, injectors and boot masters, in the same
    creation order — so state captured from one restores into the
    other.
    """
    if boot is not None:
        boot_names = {s.name for s in boot.specs}
        clash = boot_names.intersection(s.name for s in specs)
        if clash:
            raise SimulationError(
                f"boot and measured master names collide: {sorted(clash)}"
            )
    ctx = SimContext(name=f"explore_{config.name}")
    top = Module("top", ctx=ctx)
    all_specs = (list(boot.specs) if boot is not None else []) + list(specs)
    fabric = build_fabric(config, top, all_specs, metrics=metrics)
    if observer is not None:
        ctx.attach_observer(observer)
    fault_plan = None
    if faults is not None and faults.active:
        from repro.faults import (
            BusFaultInjector,
            FaultPlan,
            FaultRule,
            MemoryFaultInjector,
        )

        fault_plan = FaultPlan(seed=faults.seed, metrics=metrics)
        if ((faults.bus_error_rate or faults.decode_miss_rate)
                and hasattr(fabric, "fault_injector")):
            fabric.fault_injector = BusFaultInjector(
                fault_plan,
                error=(FaultRule(probability=faults.bus_error_rate)
                       if faults.bus_error_rate else None),
                decode=(FaultRule(probability=faults.decode_miss_rate)
                        if faults.decode_miss_rate else None),
            )
    # One memory per distinct address region.  Disjoint regions give the
    # crossbar its concurrency opportunity; masters sharing a region
    # (the "contended" workload) share one slave, which is where
    # slave-side contention dominates and fabrics converge.
    for i, (base, size) in enumerate(point_regions(specs, boot)):
        memory = MemorySlave(
            f"mem{i}", top, size=size,
            read_wait=memory_read_wait, write_wait=memory_write_wait,
        )
        fabric.attach_slave(memory, base, size)
        if fault_plan is not None and faults.mem_flip_period is not None:
            MemoryFaultInjector(
                f"seu{i}", top, memory=memory, plan=fault_plan,
                period=faults.mem_flip_period,
            )
    if boot is not None:
        for spec in boot.specs:
            socket = fabric.master_socket(spec.name,
                                          priority=spec.priority)
            TrafficMaster(f"tm_{spec.name}", top, socket=socket,
                          spec=_clamped_spec(spec, config), seed=seed,
                          rng_streams=rng_streams)
    masters = []
    if include_measured:
        # Measured traffic starts one femtosecond past the boot
        # horizon: the boot run's event loop fires entries *at* the
        # horizon, so anything scheduled there would already have run
        # before the checkpoint was captured.
        start_time = (SimTime(boot.until._fs + 1)
                      if boot is not None else None)
        for spec in specs:
            socket = fabric.master_socket(spec.name,
                                          priority=spec.priority)
            masters.append(
                TrafficMaster(f"tm_{spec.name}", top, socket=socket,
                              spec=_clamped_spec(spec, config), seed=seed,
                              rng_streams=rng_streams,
                              record_series=record_series,
                              start_time=start_time)
            )
    return ctx, masters, fabric, fault_plan


def run_point(
    config: ArchitectureConfig,
    specs: Sequence[MasterTrafficSpec],
    workload_name: str = "workload",
    max_sim_time: SimTime = us(10_000),
    seed: int = 1,
    memory_read_wait: int = 1,
    memory_write_wait: int = 1,
    metrics=None,
    observer=None,
    faults: Optional[FaultSpec] = None,
    rng_streams: bool = False,
    record_series: bool = False,
    boot: Optional[BootSpec] = None,
    warm_snapshot: Optional[dict] = None,
    timings: Optional[dict] = None,
) -> ExplorationResult:
    """Simulate one design point to workload completion.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) and ``observer``
    (a :class:`repro.obs.SimObserver`) instrument this point's private
    simulation — profile or trace a single design point without
    slowing the rest of the sweep.  ``faults`` (a :class:`FaultSpec`)
    injects seeded bus errors, decode misses and memory bit flips into
    this point; the resulting ``repro.faults.FaultPlan`` rides back on
    :attr:`ExplorationResult.fault_plan`.  ``rng_streams`` switches the
    traffic masters to per-``(master, stream)`` RNG substreams (the
    common-random-numbers discipline of :mod:`repro.stats`), and
    ``record_series`` exports each master's per-transaction latency
    series on its :class:`MasterMetrics` for steady-state estimation.

    ``boot`` prepends a warm-up phase (see :class:`BootSpec`); the
    measured masters then start one femtosecond past the boot horizon.
    ``warm_snapshot`` (a :func:`repro.snapshot.capture_state` dict of
    the boot phase) skips simulating the boot: the fresh build is
    restored from the snapshot and only the measured phase runs —
    bit-identical to the cold (boot-inline) run by construction.
    ``timings`` (a dict, when given) receives ``restore_s``, the
    wall-clock cost of the state restore.
    """
    ctx, masters, fabric, fault_plan = _build_point(
        config, specs, seed, memory_read_wait, memory_write_wait,
        metrics=metrics, observer=observer, faults=faults,
        rng_streams=rng_streams, record_series=record_series, boot=boot,
    )
    if warm_snapshot is not None:
        restore_t0 = time.perf_counter()
        extras = (
            {"fault_plan": fault_plan} if fault_plan is not None else None
        )
        ctx.resume(warm_snapshot, extras=extras)
        if timings is not None:
            timings["restore_s"] = time.perf_counter() - restore_t0
    wall_start = time.perf_counter()
    ctx.run(max_sim_time)
    wall = time.perf_counter() - wall_start
    metrics = [
        MasterMetrics(
            name=m.spec.name,
            completed=m.completed,
            errors=m.errors,
            bytes_done=m.bytes_done,
            mean_latency_ns=m.latency.mean_ns,
            max_latency_ns=m.latency.max_ns,
            latency_series=m.latency_series,
        )
        for m in masters
    ]
    # Measure over the active window, not the run bound: a finite
    # workload usually finishes long before max_sim_time.
    end = max((m.last_done for m in masters), default=ctx.now)
    if end.is_zero:
        end = ctx.now
    return ExplorationResult(
        config=config,
        workload=workload_name,
        masters=metrics,
        sim_time_ns=end.to("ns"),
        wall_seconds=wall,
        utilization=fabric.utilization(until=end),
        total_bytes=sum(m.bytes_done for m in metrics),
        fault_plan=fault_plan,
    )


#: Historical name for one design point's result; kept as an alias so
#: report tooling can speak in the paper's "point" vocabulary.
PointResult = ExplorationResult


def decode_payload(payload: dict) -> dict:
    """Turn a plain-JSON point payload into :func:`run_point` kwargs.

    The payload format is :meth:`repro.sweep.SweepPoint.to_payload`
    output, but decoding lives here — every field is an explore-level
    type, and the sweep worker pool needs exactly this module (and not
    the sweep package) importable on its hot path.
    """
    faults = payload.get("faults")
    return {
        "config": ArchitectureConfig.from_dict(payload["config"]),
        "specs": [
            MasterTrafficSpec.from_dict(s) for s in payload["specs"]
        ],
        "workload_name": payload["workload"],
        "max_sim_time": SimTime(payload["max_sim_time_fs"]),
        "seed": payload["seed"],
        "faults": None if faults is None else FaultSpec.from_dict(faults),
        "memory_read_wait": payload["memory_read_wait"],
        "memory_write_wait": payload["memory_write_wait"],
        # .get() keeps payloads from pre-stats callers decodable.
        "rng_streams": payload.get("rng_streams", False),
        "record_series": payload.get("record_series", False),
        "boot": (
            None if payload.get("boot") is None
            else BootSpec.from_dict(payload["boot"])
        ),
    }


#: Payload key carrying warm-start directions (``{"dir", "digest"}``).
#: The sweep engine annotates payloads with it *after* cache-key
#: resolution, so warm-start is a transport detail, never part of a
#: point's identity — warm and cold runs share keys, caches and golden
#: files by construction.
WARM_START_KEY = "__warm_start__"

#: Process-global digest-keyed checkpoint cache.  A warm worker loads
#: and verifies each family checkpoint once, then restores every point
#: of that family from the in-memory snapshot.
_checkpoint_cache: Dict[str, object] = {}


def _load_warm_snapshot(warm: dict) -> dict:
    """The (cached) verified snapshot a warm-start direction points at."""
    from repro.snapshot import Checkpoint

    digest = warm["digest"]
    checkpoint = _checkpoint_cache.get(digest)
    if checkpoint is None:
        checkpoint = Checkpoint.load(warm["dir"], digest)
        _checkpoint_cache[digest] = checkpoint
    return checkpoint.snapshot


def materialize_boot_checkpoint(payload: dict, directory: str,
                                family_key: str) -> str:
    """Simulate a payload's boot phase and checkpoint it; return digest.

    Builds the point's *boot-only* form (fabric, memories, fault
    injectors and boot masters — no measured masters), runs it to the
    boot horizon, and saves the captured state under
    ``checkpoint_digest(family_key, horizon_fs)`` in *directory*.  An
    existing file for that digest short-circuits: checkpoints are
    content-addressed, so a hit is the same bytes.  Raises
    :class:`repro.snapshot.CheckpointError` when the payload has no
    boot phase or the boot masters did not finish by the horizon (a
    checkpoint of an unfinished boot would leak boot traffic into the
    measured phase).
    """
    from repro.snapshot import Checkpoint, CheckpointError, checkpoint_digest

    kwargs = decode_payload(payload)
    boot = kwargs["boot"]
    if boot is None:
        raise CheckpointError("payload has no boot phase to checkpoint")
    digest = checkpoint_digest(family_key, boot.until._fs)
    if os.path.exists(Checkpoint.path_for(directory, digest)):
        return digest
    ctx, _, _, fault_plan = _build_point(
        kwargs["config"], kwargs["specs"], kwargs["seed"],
        kwargs["memory_read_wait"], kwargs["memory_write_wait"],
        faults=kwargs["faults"], rng_streams=kwargs["rng_streams"],
        boot=boot, include_measured=False,
    )
    ctx.run(boot.until)
    unfinished = [
        spec.name for spec in boot.specs
        if not ctx.objects[f"top.tm_{spec.name}"].done
    ]
    if unfinished:
        raise CheckpointError(
            f"boot masters unfinished at horizon: {unfinished} — raise the "
            "boot horizon or shrink the boot workload"
        )
    extras = {"fault_plan": fault_plan} if fault_plan is not None else None
    checkpoint = Checkpoint.capture(
        ctx, config_key=family_key, extras=extras,
        meta={"boot_until_fs": boot.until._fs,
              "config": kwargs["config"].name},
    )
    checkpoint.save(directory)
    _checkpoint_cache[digest] = checkpoint
    return digest


#: Env var mapping config names to injected hazards (JSON object, e.g.
#: ``{"plb_sp": "raise"}``).  Values: ``raise`` (the point raises),
#: ``exit`` (the worker process dies via ``os._exit``), ``hang`` or
#: ``hang:SECONDS`` (the point sleeps past any deadline).  The sweep's
#: quarantine/chaos tests set this in the orchestrator so forked
#: workers inherit it; unset (the overwhelmingly common case) the hook
#: is a single dict lookup per point.
HAZARD_ENV = "REPRO_EXPLORE_HAZARD"


class InjectedHazardError(RuntimeError):
    """The failure raised by a ``raise``-mode injected hazard."""


def _maybe_trigger_hazard(config_name: str) -> None:
    spec = os.environ.get(HAZARD_ENV)
    if not spec:
        return
    import json

    try:
        action = json.loads(spec).get(config_name)
    except (ValueError, AttributeError):
        return
    if not action:
        return
    if action == "raise":
        raise InjectedHazardError(
            f"injected hazard: poison point {config_name}")
    if action == "exit":
        os._exit(41)
    if action == "hang" or action.startswith("hang:"):
        _, _, seconds = action.partition(":")
        time.sleep(float(seconds) if seconds else 3600.0)


def run_payload(payload: dict) -> dict:
    """Simulate one plain-JSON point payload; return its result dict.

    Dict-in/dict-out — the form that crosses a process boundary without
    any simulation class needing pickle support.  The returned dict is
    canonical :meth:`ExplorationResult.to_dict` output, so caller-side
    ``from_dict`` reconstitution is bit-identical to an inline run.
    """
    kwargs = decode_payload(payload)
    _maybe_trigger_hazard(kwargs["config"].name)
    warm = payload.get(WARM_START_KEY)
    if warm is not None and kwargs["boot"] is not None:
        kwargs["warm_snapshot"] = _load_warm_snapshot(warm)
    return run_point(**kwargs).to_dict()


def _error_marker(exc: Exception) -> dict:
    # Lazy import: repro.sweep imports this module at package-import
    # time, so the reverse dependency must resolve at call time only.
    from repro.snapshot import CheckpointError, SnapshotError
    from repro.sweep.recovery import (
        failure_from_exception,
        failure_from_restore,
    )

    if isinstance(exc, (CheckpointError, SnapshotError)):
        return {"__sweep_error__": failure_from_restore(exc)}
    return {"__sweep_error__": failure_from_exception(exc)}


def run_payload_batch(payloads: Sequence[dict],
                      capture_errors: bool = False) -> List[dict]:
    """Simulate a batch of point payloads in order; one result dict each.

    The worker-side entry point of the sweep's persistent pool
    (:class:`repro.sweep.WorkerPool`): one IPC round-trip ships a whole
    shard of points and returns a compact list of result dicts, so
    per-point dispatch overhead amortizes to ~zero.

    With ``capture_errors`` a raising point yields an
    ``{"__sweep_error__": {...}}`` marker in its slot instead of
    aborting the batch — the self-healing engine turns markers into
    retries/quarantine while the surviving points' results stay
    bit-identical to an undisturbed run.
    """
    if not capture_errors:
        return [run_payload(payload) for payload in payloads]
    results = []
    for payload in payloads:
        try:
            results.append(run_payload(payload))
        except Exception as exc:
            results.append(_error_marker(exc))
    return results


def run_payload_batch_telemetry(
    payloads: Sequence[dict],
    keys: Optional[Sequence[str]] = None,
    emit=None,
    worker_id=None,
    capture_errors: bool = False,
):
    """Simulate a batch like :func:`run_payload_batch`, with telemetry.

    The telemetry sibling of the pool's worker entry point.  Results
    come from the *same* ``decode_payload → run_point → to_dict``
    pipeline, so they are bit-identical with telemetry on or off (the
    sweep's determinism invariant); on top of that, every point records
    wall-clock ``setup`` / ``simulate`` / ``serialize`` spans, all
    points in the batch publish into one private
    :class:`repro.obs.MetricsRegistry` whose snapshot rides home in
    the blob, and ``emit`` (when given) receives one ``point_done``
    progress event per finished point.

    Returns ``(result_dicts, blob)`` where ``blob`` is JSON-able:
    ``worker_id``, ``pid``, batch ``t0``/``t1``, ``points``, ``spans``
    (each ``{"name", "t0", "t1", "args"}`` in wall-clock seconds) and
    ``metrics`` (the registry snapshot).  ``keys`` (parallel to
    ``payloads``) label spans and events with content keys.  The
    observability import is lazy so plain (telemetry-off) workers
    never load :mod:`repro.obs`.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    pid = os.getpid()
    spans: List[dict] = []
    results: List[dict] = []
    batch_t0 = time.time()
    for index, payload in enumerate(payloads):
        key = keys[index] if keys is not None else None
        raw_config = payload.get("config") or {}
        config_name = raw_config.get("label") or (
            f"{raw_config['fabric']}/{raw_config['arbiter']}"
            if raw_config.get("fabric") and raw_config.get("arbiter")
            else None)
        t0 = time.time()
        warm_digest = None
        timings: dict = {}
        try:
            kwargs = decode_payload(payload)
            config_name = kwargs["config"].name
            warm = payload.get(WARM_START_KEY)
            t1 = time.time()
            _maybe_trigger_hazard(config_name)
            if warm is not None and kwargs["boot"] is not None:
                load_t0 = time.perf_counter()
                kwargs["warm_snapshot"] = _load_warm_snapshot(warm)
                timings["load_s"] = time.perf_counter() - load_t0
                warm_digest = warm["digest"]
            result = run_point(metrics=registry, timings=timings, **kwargs)
            t2 = time.time()
            data = result.to_dict()
            t3 = time.time()
        except Exception as exc:
            if not capture_errors:
                raise
            results.append(_error_marker(exc))
            if emit is not None:
                emit({"type": "point_failed", "worker_id": worker_id,
                      "pid": pid, "key": key, "config": config_name,
                      "error_type": type(exc).__name__})
            continue
        results.append(data)
        args = {"point": config_name}
        if key is not None:
            args["key"] = key
        # A warm point splits [t1, t2] into restore (checkpoint load +
        # state overlay) and simulate; the restore wall time comes from
        # the run itself so the span boundary is exact.
        restore_s = timings.get("load_s", 0.0) + timings.get("restore_s", 0.0)
        sim_begin = t1 + restore_s
        named_spans = [("setup", t0, t1)]
        if warm_digest is not None:
            named_spans.append(("restore", t1, sim_begin))
        named_spans.extend((("simulate", sim_begin, t2),
                            ("serialize", t2, t3)))
        for name, begin, end in named_spans:
            spans.append({"name": name, "t0": begin, "t1": end,
                          "args": dict(args)})
        if emit is not None:
            if warm_digest is not None:
                emit({"type": "checkpoint_restored",
                      "worker_id": worker_id, "pid": pid, "key": key,
                      "config": config_name, "digest": warm_digest,
                      "restore_s": restore_s})
            emit({"type": "point_done", "worker_id": worker_id,
                  "pid": pid, "key": key,
                  "config": config_name})
    return results, {
        "worker_id": worker_id,
        "pid": pid,
        "t0": batch_t0,
        "t1": time.time(),
        "points": len(results),
        "spans": spans,
        "metrics": registry.snapshot(),
    }


def explore(
    space: Iterable[ArchitectureConfig],
    specs: Sequence[MasterTrafficSpec],
    workload_name: str = "workload",
    max_sim_time: SimTime = us(10_000),
    seed: int = 1,
) -> List[ExplorationResult]:
    """Sweep every configuration in ``space`` over one workload."""
    return [
        run_point(config, specs, workload_name=workload_name,
                  max_sim_time=max_sim_time, seed=seed)
        for config in space
    ]


def pareto_front(
    results: Sequence[ExplorationResult],
) -> List[ExplorationResult]:
    """Non-dominated points for (latency down, throughput up)."""
    front = []
    for candidate in results:
        dominated = False
        for other in results:
            if other is candidate:
                continue
            if (other.mean_latency_ns <= candidate.mean_latency_ns
                    and other.throughput_mbps >= candidate.throughput_mbps
                    and (other.mean_latency_ns < candidate.mean_latency_ns
                         or other.throughput_mbps
                         > candidate.throughput_mbps)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front


def results_to_csv(results: Sequence[ExplorationResult],
                   path: str) -> None:
    """Dump exploration results (one row per design point) to CSV."""
    import csv

    rows = [r.as_row() for r in results]
    if not rows:
        with open(path, "w", newline="", encoding="utf-8") as fh:
            fh.write("")
        return
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def format_table(results: Sequence[ExplorationResult]) -> str:
    """Human-readable exploration table (one row per design point)."""
    if not results:
        return "(no results)"
    rows = [r.as_row() for r in results]
    headers = list(rows[0].keys())
    widths = {
        h: max(len(h), *(len(str(row[h])) for row in rows))
        for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row[h]).ljust(widths[h]) for h in headers)
        )
    return "\n".join(lines)
