"""Design-space description for communication architecture exploration."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.kernel.simtime import SimTime, ns

#: Fabrics the runner can instantiate.
FABRICS = ("plb", "opb", "ahb", "generic", "crossbar")
#: Arbitration policies the runner can instantiate.
ARBITERS = ("static-priority", "round-robin", "tdma")


@dataclass(frozen=True)
class ArchitectureConfig:
    """One point in the communication-architecture design space."""

    fabric: str = "plb"
    arbiter: str = "static-priority"
    clock_period: SimTime = ns(10)
    max_burst: int = 16
    tdma_slot_cycles: int = 8
    label: Optional[str] = None

    def __post_init__(self):
        if self.fabric not in FABRICS:
            raise ValueError(
                f"unknown fabric {self.fabric!r}; expected one of {FABRICS}"
            )
        if self.arbiter not in ARBITERS:
            raise ValueError(
                f"unknown arbiter {self.arbiter!r}; expected one of "
                f"{ARBITERS}"
            )
        if self.max_burst < 1:
            raise ValueError("max_burst must be >= 1")

    @property
    def name(self) -> str:
        """Readable identifier (label override or derived)."""
        if self.label:
            return self.label
        mhz = 1e3 / self.clock_period.to("ns")
        return (
            f"{self.fabric}/{self.arbiter}@{mhz:.0f}MHz"
            f"/b{self.max_burst}"
        )

    def cache_key(self) -> str:
        """Canonical identity string for result caching.

        Pins a fixed field order and renders the clock period as its
        exact integer femtosecond count, so the key is independent of
        dataclass field order, ``SimTime`` repr, and the cosmetic
        :attr:`label` (two configs differing only in label simulate
        identically and must share cached results).  The format is a
        compatibility contract — tests pin it, and the sweep cache keys
        derive from it — so changing it invalidates every stored sweep
        result.
        """
        return (
            f"fabric={self.fabric};arbiter={self.arbiter};"
            f"clock_fs={self.clock_period.femtoseconds};"
            f"max_burst={self.max_burst};"
            f"tdma_slot_cycles={self.tdma_slot_cycles}"
        )

    def to_dict(self) -> dict:
        """JSON-able dict (``clock_period`` as integer femtoseconds)."""
        return {
            "fabric": self.fabric,
            "arbiter": self.arbiter,
            "clock_period_fs": self.clock_period.femtoseconds,
            "max_burst": self.max_burst,
            "tdma_slot_cycles": self.tdma_slot_cycles,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchitectureConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            fabric=data["fabric"],
            arbiter=data["arbiter"],
            clock_period=SimTime(data["clock_period_fs"]),
            max_burst=data["max_burst"],
            tdma_slot_cycles=data["tdma_slot_cycles"],
            label=data.get("label"),
        )


@dataclass
class DesignSpace:
    """Cartesian product of architecture parameters."""

    fabrics: Sequence[str] = ("plb", "generic", "crossbar")
    arbiters: Sequence[str] = ("static-priority", "round-robin")
    clock_periods: Sequence[SimTime] = (ns(10),)
    max_bursts: Sequence[int] = (16,)

    def __iter__(self) -> Iterator[ArchitectureConfig]:
        for fabric, arbiter, period, burst in itertools.product(
            self.fabrics, self.arbiters, self.clock_periods,
            self.max_bursts,
        ):
            yield ArchitectureConfig(
                fabric=fabric, arbiter=arbiter,
                clock_period=period, max_burst=burst,
            )

    def __len__(self) -> int:
        return (
            len(self.fabrics) * len(self.arbiters)
            * len(self.clock_periods) * len(self.max_bursts)
        )
