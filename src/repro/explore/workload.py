"""Synthetic traffic generation for architecture exploration.

Real exploration runs replay application traffic; the paper has no
public traces, so the workload generator produces the classic
patterns communication-architecture studies sweep (and experiment E3
uses): streaming DMA, random CPU-like access, and request/response
ping-pong.  Generation is fully deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.kernel.errors import SimulationError
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime, ZERO_TIME, ns
from repro.ocp.types import OcpCmd, OcpRequest
from repro.trace.stats import TimeStats

#: Supported traffic patterns.
PATTERNS = ("stream", "random", "pingpong")

#: RNG substream names a traffic master draws from, in the order they
#: exist: addresses, read/write coin flips, inter-transaction gaps,
#: write payload words.  Keeping each decision on its own stream is
#: what makes common-random-numbers work across design points — a
#: config that clamps bursts (consuming fewer data words) no longer
#: desynchronizes the address and gap draws of every later
#: transaction.
SUBSTREAMS = ("addr", "rw", "gap", "data")


def _rng_json(rng: random.Random) -> list:
    """JSON-able encoding of ``Random.getstate()`` (tuple -> lists)."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _rng_from_json(payload) -> tuple:
    """Inverse of :func:`_rng_json` (lists -> the setstate tuple)."""
    version, internal, gauss = payload
    return (version, tuple(internal), gauss)


def substream_seed(seed: int, master: str, stream: str) -> str:
    """Canonical seed string of one ``(master, stream)`` RNG substream.

    String seeds are stable across interpreter processes (tuple hashes
    are not — see :class:`TrafficMaster`); the exact format is a
    compatibility contract pinned by tests, like ``cache_key()``:
    changing it changes every substream-seeded simulation result.
    """
    if stream not in SUBSTREAMS:
        raise ValueError(
            f"unknown substream {stream!r}; expected one of {SUBSTREAMS}"
        )
    return f"{seed}:{master}:{stream}"


@dataclass
class MasterTrafficSpec:
    """Traffic description for one bus master.

    Parameters
    ----------
    pattern:
        ``stream`` — sequential bursts walking the region (DMA-like);
        ``random`` — uniformly random aligned addresses (CPU-like);
        ``pingpong`` — alternating write/read to the same line
        (synchronization-flag traffic).
    gap:
        Mean idle time between transactions (uniform in [0, 2*gap]).
    read_fraction:
        Probability a transaction is a read (ignored by ``pingpong``).
    transactions:
        How many transactions to issue (None = until simulation ends).
    """

    name: str
    pattern: str = "stream"
    base: int = 0x0
    size: int = 1 << 16
    burst_length: int = 4
    gap: SimTime = ns(100)
    read_fraction: float = 0.5
    transactions: Optional[int] = 200
    priority: int = 0
    word_bytes: int = 4

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r}; expected one "
                f"of {PATTERNS}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be within [0, 1]")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        span = self.burst_length * self.word_bytes
        if span > self.size:
            raise ValueError("burst does not fit the address region")

    def to_dict(self) -> dict:
        """JSON-able dict (``gap`` as integer femtoseconds)."""
        return {
            "name": self.name,
            "pattern": self.pattern,
            "base": self.base,
            "size": self.size,
            "burst_length": self.burst_length,
            "gap_fs": self.gap.femtoseconds,
            "read_fraction": self.read_fraction,
            "transactions": self.transactions,
            "priority": self.priority,
            "word_bytes": self.word_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MasterTrafficSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            pattern=data["pattern"],
            base=data["base"],
            size=data["size"],
            burst_length=data["burst_length"],
            gap=SimTime(data["gap_fs"]),
            read_fraction=data["read_fraction"],
            transactions=data["transactions"],
            priority=data["priority"],
            word_bytes=data["word_bytes"],
        )

    def scaled(self, fraction: float) -> "MasterTrafficSpec":
        """A copy with ``transactions`` scaled down to ``fraction``.

        Used by early-stop sweep strategies to screen design points on
        a shortened workload; an unbounded spec (``transactions=None``)
        is returned unchanged.  At least one transaction survives.
        """
        if self.transactions is None or fraction >= 1.0:
            return self
        return MasterTrafficSpec(
            name=self.name, pattern=self.pattern, base=self.base,
            size=self.size, burst_length=self.burst_length, gap=self.gap,
            read_fraction=self.read_fraction,
            transactions=max(1, int(self.transactions * fraction)),
            priority=self.priority, word_bytes=self.word_bytes,
        )


class TrafficMaster(Module):
    """Drives one blocking-transport socket with generated traffic.

    ``rng_streams=True`` gives every decision kind its own RNG
    substream seeded by :func:`substream_seed` — the common-random-
    numbers discipline paired design-point comparisons rely on.  Off
    (the default), all decisions share one RNG exactly as before, so
    existing seeds reproduce byte-identical traffic.
    ``record_series=True`` additionally stores the per-transaction
    latency series (ns floats, completion order) for steady-state
    estimation in :mod:`repro.stats`.
    """

    def __init__(self, name, parent=None, ctx=None,
                 socket=None, spec: MasterTrafficSpec = None,
                 seed: int = 1, rng_streams: bool = False,
                 record_series: bool = False,
                 start_time: Optional[SimTime] = None):
        super().__init__(name, parent, ctx)
        if socket is None or spec is None:
            raise SimulationError(
                f"traffic master {name!r} needs a socket and a spec"
            )
        self.socket = socket
        self.spec = spec
        # Seed with a string, not a tuple hash: str/bytes seeding is
        # stable across interpreter processes, while tuple.__hash__
        # includes the PYTHONHASHSEED-salted string hash and silently
        # broke cross-process reproducibility.
        self.rng = random.Random(f"{seed}:{spec.name}")
        if rng_streams:
            self._rng_addr = random.Random(
                substream_seed(seed, spec.name, "addr"))
            self._rng_rw = random.Random(
                substream_seed(seed, spec.name, "rw"))
            self._rng_gap = random.Random(
                substream_seed(seed, spec.name, "gap"))
            self._rng_data = random.Random(
                substream_seed(seed, spec.name, "data"))
        else:
            # All four names alias the one shared RNG: the draw order
            # is unchanged from the pre-substream implementation, so
            # default-mode results stay byte-identical.
            self._rng_addr = self._rng_rw = self.rng
            self._rng_gap = self._rng_data = self.rng
        self.rng_streams = rng_streams
        self.latency = TimeStats()
        self.latency_series = [] if record_series else None
        self.bytes_done = 0
        self.completed = 0
        self.errors = 0
        self.last_done: SimTime = ZERO_TIME
        self.start_time = start_time
        self._stream_offset = 0
        self._index = 0
        self._pending_gap_fs: Optional[int] = None
        self.add_thread(self._drive, "drive")

    # -- request generation ------------------------------------------------------

    def _next_request(self, index: int) -> OcpRequest:
        spec = self.spec
        span = spec.burst_length * spec.word_bytes
        if spec.pattern == "stream":
            addr = spec.base + self._stream_offset
            self._stream_offset = (self._stream_offset + span) % (
                spec.size - span + 1 if spec.size > span else 1
            )
            is_read = self._rng_rw.random() < spec.read_fraction
        elif spec.pattern == "random":
            slots = max((spec.size - span) // spec.word_bytes, 1)
            addr = (spec.base
                    + self._rng_addr.randrange(slots) * spec.word_bytes)
            is_read = self._rng_rw.random() < spec.read_fraction
        else:  # pingpong
            addr = spec.base
            is_read = bool(index % 2)
        if is_read:
            return OcpRequest(
                OcpCmd.RD, addr, burst_length=spec.burst_length,
                word_bytes=spec.word_bytes,
            )
        data = [
            self._rng_data.randrange(1 << 32)
            for _ in range(spec.burst_length)
        ]
        return OcpRequest(
            OcpCmd.WR, addr, data=data, burst_length=spec.burst_length,
            word_bytes=spec.word_bytes,
        )

    def _gap_time(self) -> SimTime:
        mean_fs = self.spec.gap.femtoseconds
        if mean_fs == 0:
            return ZERO_TIME
        return SimTime(self._rng_gap.randrange(2 * mean_fs + 1))

    # -- the driver process ---------------------------------------------------------

    def _drive(self) -> Generator:
        spec = self.spec
        if self.start_time is not None:
            # Absolute anchor: the wait is recomputed from *now*, so a
            # master created at restore time parks at the same absolute
            # instant a cold run's master does.
            start_fs = self.start_time._fs
            while self.ctx._now_fs < start_fs:
                yield SimTime(start_fs - self.ctx._now_fs)
        while spec.transactions is None or self._index < spec.transactions:
            if self._pending_gap_fs is None:
                # Persist the drawn gap before yielding: a checkpoint
                # taken while parked on the gap must not redraw it on
                # restore (the RNG stream already advanced).
                self._pending_gap_fs = self._gap_time()._fs
            if self._pending_gap_fs > 0:
                yield SimTime(self._pending_gap_fs)
            self._pending_gap_fs = None
            index = self._index
            request = self._next_request(index)
            begin = self.ctx.now
            response = yield from self.socket.transport(request)
            elapsed = self.ctx.now - begin
            self.latency.add(elapsed)
            if self.latency_series is not None:
                self.latency_series.append(elapsed.to("ns"))
            if response.ok:
                self.bytes_done += request.nbytes
            else:
                self.errors += 1
            self.completed += 1
            self.last_done = self.ctx.now
            self._index = index + 1

    # -- checkpoint/restore protocol (see repro.snapshot) --------------------

    def __snapshot__(self) -> dict:
        state = {
            "rng": _rng_json(self.rng),
            "latency": self.latency.__snapshot__(),
            "latency_series": (
                list(self.latency_series)
                if self.latency_series is not None else None
            ),
            "bytes_done": self.bytes_done,
            "completed": self.completed,
            "errors": self.errors,
            "last_done_fs": self.last_done._fs,
            "stream_offset": self._stream_offset,
            "index": self._index,
            "pending_gap_fs": self._pending_gap_fs,
        }
        if self.rng_streams:
            state["streams"] = {
                name: _rng_json(getattr(self, f"_rng_{name}"))
                for name in SUBSTREAMS
            }
        return state

    def __restore__(self, state: dict) -> None:
        self.rng.setstate(_rng_from_json(state["rng"]))
        if self.rng_streams and "streams" in state:
            for name, payload in state["streams"].items():
                getattr(self, f"_rng_{name}").setstate(
                    _rng_from_json(payload))
        self.latency.__restore__(state["latency"])
        if state["latency_series"] is None:
            self.latency_series = None
        else:
            self.latency_series = list(state["latency_series"])
        self.bytes_done = state["bytes_done"]
        self.completed = state["completed"]
        self.errors = state["errors"]
        self.last_done = SimTime(state["last_done_fs"])
        self._stream_offset = state["stream_offset"]
        self._index = state["index"]
        self._pending_gap_fs = state["pending_gap_fs"]

    @property
    def done(self) -> bool:
        """True once the requested transaction count completed."""
        return (
            self.spec.transactions is not None
            and self.completed >= self.spec.transactions
        )


def standard_workloads() -> dict:
    """The named workloads used by experiment E3: the three classic
    patterns plus a fully-contended one that removes any
    fabric-parallelism advantage."""
    return {
        "dma_stream": [
            MasterTrafficSpec("dma0", pattern="stream", base=0x0,
                              size=1 << 16, burst_length=8, gap=ns(50),
                              read_fraction=0.0, transactions=300,
                              priority=1),
            MasterTrafficSpec("dma1", pattern="stream", base=0x10000,
                              size=1 << 16, burst_length=8, gap=ns(50),
                              read_fraction=1.0, transactions=300,
                              priority=2),
        ],
        "cpu_random": [
            MasterTrafficSpec("cpu0", pattern="random", base=0x0,
                              size=1 << 16, burst_length=1, gap=ns(80),
                              read_fraction=0.7, transactions=400,
                              priority=0),
            MasterTrafficSpec("cpu1", pattern="random", base=0x10000,
                              size=1 << 16, burst_length=1, gap=ns(80),
                              read_fraction=0.7, transactions=400,
                              priority=1),
        ],
        "mixed": [
            MasterTrafficSpec("cpu", pattern="random", base=0x0,
                              size=1 << 16, burst_length=1, gap=ns(100),
                              read_fraction=0.8, transactions=300,
                              priority=0),
            MasterTrafficSpec("dma", pattern="stream", base=0x10000,
                              size=1 << 16, burst_length=16, gap=ns(200),
                              read_fraction=0.0, transactions=150,
                              priority=1),
            MasterTrafficSpec("sync", pattern="pingpong", base=0x20000,
                              size=1 << 12, burst_length=1, gap=ns(150),
                              read_fraction=0.5, transactions=200,
                              priority=2),
        ],
        # every master hammers ONE region: slave-side contention
        # dominates and fabric parallelism cannot help — the workload
        # that keeps exploration results honest
        "contended": [
            MasterTrafficSpec(f"m{i}", pattern="random", base=0x0,
                              size=1 << 14, burst_length=4, gap=ns(60),
                              read_fraction=0.5, transactions=200,
                              priority=i)
            for i in range(3)
        ],
    }
