"""SHIP ports: how processing elements attach to SHIP channels.

A PE declares :class:`ShipPort` members and calls the four SHIP
interface methods on them; the port forwards to the channel endpoint it
claimed at binding.  :class:`ShipMasterPort` and :class:`ShipSlavePort`
statically restrict the callable subset for designers who want the
master/slave discipline enforced at model-authoring time rather than
detected at run time.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.kernel.errors import ProcessError
from repro.kernel.port import Port
from repro.kernel.simtime import SimTime
from repro.ship.channel import ShipChannel, ShipEnd
from repro.ship.roles import Role
from repro.ship.serializable import ShipSerializable


class ShipPort(Port):
    """A port requiring a :class:`ShipChannel`; all four calls allowed."""

    #: interface calls this port type permits (None = all)
    _allowed_calls: Optional[frozenset] = None

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=ShipChannel,
                         required=required)
        self._end: Optional[ShipEnd] = None

    @property
    def end(self) -> ShipEnd:
        """The channel endpoint this port claimed (claims lazily)."""
        if self._end is None:
            self._end = self.channel.claim_end(self)
        return self._end

    def complete_binding(self) -> None:
        super().complete_binding()
        if self.bound and self._end is None:
            self._end = self.channel.claim_end(self)

    def _check_allowed(self, call: str) -> None:
        if self._allowed_calls is not None and call not in self._allowed_calls:
            raise ProcessError(
                f"{type(self).__name__} {self.full_name} does not permit "
                f"{call!r} (allowed: {sorted(self._allowed_calls)})"
            )

    # -- the four SHIP interface method calls ----------------------------------

    def send(self, obj: ShipSerializable,
             timeout: Optional["SimTime"] = None) -> Generator:
        """Blocking one-way transfer (master call)."""
        self._check_allowed("send")
        yield from self.channel.send(self.end, obj, timeout=timeout)

    def recv(self, timeout: Optional["SimTime"] = None) -> Generator:
        """Blocking receive (slave call); returns the received object."""
        self._check_allowed("recv")
        return (yield from self.channel.recv(self.end, timeout=timeout))

    def request(self, obj: ShipSerializable,
                timeout: Optional["SimTime"] = None) -> Generator:
        """Blocking round trip (master call); returns the reply."""
        self._check_allowed("request")
        return (yield from self.channel.request(self.end, obj,
                                                timeout=timeout))

    def reply(self, obj: ShipSerializable,
              timeout: Optional["SimTime"] = None) -> Generator:
        """Answer the oldest outstanding request (slave call)."""
        self._check_allowed("reply")
        yield from self.channel.reply(self.end, obj, timeout=timeout)

    # -- role introspection -------------------------------------------------------

    @property
    def detected_role(self) -> Role:
        """Role of this port as observed by the channel so far."""
        return self.channel.detected_role(self.end)


class ShipMasterPort(ShipPort):
    """A SHIP port restricted to the master calls ``send``/``request``."""

    _allowed_calls = frozenset({"send", "request"})


class ShipSlavePort(ShipPort):
    """A SHIP port restricted to the slave calls ``recv``/``reply``."""

    _allowed_calls = frozenset({"recv", "reply"})
