"""``ship_serializable_if``: the SHIP serialization interface.

The paper specifies that the SHIP channel transfers *any C++ object that
implements the ``ship_serializable_if`` interface*, which defines the
``serialize`` and ``deserialize`` functions used to turn communication
objects into serial data streams and back.

The Python equivalent is the :class:`ShipSerializable` ABC plus a type
registry: every serializable class registers under a unique 16-bit type
tag, and :func:`encode_message` / :func:`decode_message` frame payloads
as ``tag (2B) | length (4B) | payload`` so a byte stream is
self-describing — exactly what the HW/SW interface needs to push SHIP
messages through shared memory.

Built-in wrappers cover the common cases: integers, byte strings, text,
floats, and homogeneous integer arrays.  Model-specific payloads are
usually declared with :func:`ship_struct`::

    @ship_struct
    @dataclass
    class PixelBlock:
        x: int
        y: int
        data: bytes
"""

from __future__ import annotations

import dataclasses
import struct
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.kernel.errors import KernelError


class SerializationError(KernelError):
    """Raised for malformed byte streams or unregistered types."""


class ShipSerializable(ABC):
    """The SHIP serializable interface (``ship_serializable_if``)."""

    @abstractmethod
    def serialize(self) -> bytes:
        """Encode this object as a byte string."""

    @classmethod
    @abstractmethod
    def deserialize(cls, data: bytes) -> "ShipSerializable":
        """Decode an instance from ``data`` (inverse of :meth:`serialize`)."""


#: type tag -> class
_REGISTRY: Dict[int, Type[ShipSerializable]] = {}
#: class -> type tag
_TAGS: Dict[Type[ShipSerializable], int] = {}
_NEXT_TAG = [1]

_FRAME_HEADER = struct.Struct(">HI")  # tag, payload length


def register_serializable(
    cls: Type[ShipSerializable], tag: int = None
) -> Type[ShipSerializable]:
    """Register ``cls`` in the global type registry.

    Explicit tags let independently-built HW and SW sides agree on the
    wire format; automatic tags are fine within one simulation.
    """
    if tag is None:
        tag = _NEXT_TAG[0]
        while tag in _REGISTRY:
            tag += 1
        _NEXT_TAG[0] = tag + 1
    if tag in _REGISTRY and _REGISTRY[tag] is not cls:
        raise SerializationError(
            f"type tag {tag} already registered to "
            f"{_REGISTRY[tag].__name__}"
        )
    if not (0 < tag < 0x10000):
        raise SerializationError(f"type tag out of range: {tag}")
    _REGISTRY[tag] = cls
    _TAGS[cls] = tag
    return cls


def registered_tag(cls: Type) -> int:
    """The wire tag registered for ``cls``."""
    try:
        return _TAGS[cls]
    except KeyError:
        raise SerializationError(
            f"{cls.__name__} is not a registered SHIP-serializable type"
        ) from None


def encode_message(obj: ShipSerializable) -> bytes:
    """Frame ``obj`` as ``tag | length | payload`` bytes."""
    tag = registered_tag(type(obj))
    payload = obj.serialize()
    if not isinstance(payload, (bytes, bytearray)):
        raise SerializationError(
            f"{type(obj).__name__}.serialize must return bytes, got "
            f"{type(payload).__name__}"
        )
    return _FRAME_HEADER.pack(tag, len(payload)) + bytes(payload)


def decode_message(data: bytes) -> Tuple[ShipSerializable, int]:
    """Decode one framed message; returns ``(object, bytes_consumed)``."""
    if len(data) < _FRAME_HEADER.size:
        raise SerializationError(
            f"truncated frame header: {len(data)} bytes"
        )
    tag, length = _FRAME_HEADER.unpack_from(data)
    end = _FRAME_HEADER.size + length
    if len(data) < end:
        raise SerializationError(
            f"truncated payload: expected {length} bytes, have "
            f"{len(data) - _FRAME_HEADER.size}"
        )
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise SerializationError(f"unknown type tag {tag}")
    payload = data[_FRAME_HEADER.size:end]
    return cls.deserialize(payload), end


def decode_stream(data: bytes) -> List[ShipSerializable]:
    """Decode a concatenation of framed messages."""
    objects = []
    offset = 0
    view = bytes(data)
    while offset < len(view):
        obj, consumed = decode_message(view[offset:])
        objects.append(obj)
        offset += consumed
    return objects


# ---------------------------------------------------------------------------
# Built-in serializable wrappers
# ---------------------------------------------------------------------------


class ShipInt(ShipSerializable):
    """A signed 64-bit integer payload."""

    _FORMAT = struct.Struct(">q")

    def __init__(self, value: int):
        self.value = int(value)

    def serialize(self) -> bytes:
        return self._FORMAT.pack(self.value)

    @classmethod
    def deserialize(cls, data: bytes) -> "ShipInt":
        """Decode a signed 64-bit integer payload."""
        if len(data) != cls._FORMAT.size:
            raise SerializationError(
                f"ShipInt payload must be {cls._FORMAT.size} bytes"
            )
        return cls(cls._FORMAT.unpack(data)[0])

    def __eq__(self, other) -> bool:
        return isinstance(other, ShipInt) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ShipInt", self.value))

    def __repr__(self) -> str:
        return f"ShipInt({self.value})"


class ShipFloat(ShipSerializable):
    """A 64-bit IEEE-754 float payload."""

    _FORMAT = struct.Struct(">d")

    def __init__(self, value: float):
        self.value = float(value)

    def serialize(self) -> bytes:
        return self._FORMAT.pack(self.value)

    @classmethod
    def deserialize(cls, data: bytes) -> "ShipFloat":
        """Decode an IEEE-754 double payload."""
        return cls(cls._FORMAT.unpack(data)[0])

    def __eq__(self, other) -> bool:
        return isinstance(other, ShipFloat) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ShipFloat", self.value))

    def __repr__(self) -> str:
        return f"ShipFloat({self.value})"


class ShipBytes(ShipSerializable):
    """A raw byte-string payload."""

    def __init__(self, value: bytes):
        self.value = bytes(value)

    def serialize(self) -> bytes:
        return self.value

    @classmethod
    def deserialize(cls, data: bytes) -> "ShipBytes":
        """Wrap the raw payload bytes."""
        return cls(data)

    def __eq__(self, other) -> bool:
        return isinstance(other, ShipBytes) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ShipBytes", self.value))

    def __len__(self) -> int:
        return len(self.value)

    def __repr__(self) -> str:
        return f"ShipBytes({self.value!r})"


class ShipString(ShipSerializable):
    """A UTF-8 text payload."""

    def __init__(self, value: str):
        self.value = str(value)

    def serialize(self) -> bytes:
        return self.value.encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "ShipString":
        """Decode a UTF-8 payload."""
        return cls(data.decode("utf-8"))

    def __eq__(self, other) -> bool:
        return isinstance(other, ShipString) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ShipString", self.value))

    def __repr__(self) -> str:
        return f"ShipString({self.value!r})"


class ShipIntArray(ShipSerializable):
    """A homogeneous array of signed 32-bit integers."""

    def __init__(self, values):
        self.values = [int(v) for v in values]

    def serialize(self) -> bytes:
        return struct.pack(f">{len(self.values)}i", *self.values)

    @classmethod
    def deserialize(cls, data: bytes) -> "ShipIntArray":
        """Decode a packed array of 32-bit integers."""
        if len(data) % 4:
            raise SerializationError(
                f"ShipIntArray payload length {len(data)} not a multiple of 4"
            )
        count = len(data) // 4
        return cls(struct.unpack(f">{count}i", data))

    def __eq__(self, other) -> bool:
        return isinstance(other, ShipIntArray) and other.values == self.values

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"ShipIntArray({self.values})"


for _cls, _tag in (
    (ShipInt, 1),
    (ShipFloat, 2),
    (ShipBytes, 3),
    (ShipString, 4),
    (ShipIntArray, 5),
):
    register_serializable(_cls, _tag)


# ---------------------------------------------------------------------------
# Struct-style serializables from dataclasses
# ---------------------------------------------------------------------------

_FIELD_CODECS: Dict[type, Tuple[Callable, Callable]] = {}


def _encode_field(value: Any) -> bytes:
    """Length-prefixed encoding of one dataclass field."""
    if isinstance(value, bool):
        body, code = (b"\x01" if value else b"\x00"), b"B"
    elif isinstance(value, int):
        body, code = struct.pack(">q", value), b"I"
    elif isinstance(value, float):
        body, code = struct.pack(">d", value), b"F"
    elif isinstance(value, bytes):
        body, code = value, b"Y"
    elif isinstance(value, str):
        body, code = value.encode("utf-8"), b"S"
    elif isinstance(value, (list, tuple)) and all(
        isinstance(v, int) for v in value
    ):
        body, code = struct.pack(f">{len(value)}q", *value), b"L"
    else:
        raise SerializationError(
            f"unsupported field type in ship_struct: {type(value).__name__}"
        )
    return code + struct.pack(">I", len(body)) + body


def _decode_field(data: bytes, offset: int) -> Tuple[Any, int]:
    code = data[offset:offset + 1]
    (length,) = struct.unpack_from(">I", data, offset + 1)
    start = offset + 5
    body = data[start:start + length]
    if len(body) != length:
        raise SerializationError("truncated ship_struct field")
    if code == b"B":
        value: Any = body == b"\x01"
    elif code == b"I":
        value = struct.unpack(">q", body)[0]
    elif code == b"F":
        value = struct.unpack(">d", body)[0]
    elif code == b"Y":
        value = body
    elif code == b"S":
        value = body.decode("utf-8")
    elif code == b"L":
        value = list(struct.unpack(f">{length // 8}q", body))
    else:
        raise SerializationError(f"unknown ship_struct field code {code!r}")
    return value, start + length


def ship_struct(cls=None, *, tag: int = None):
    """Class decorator making a dataclass SHIP-serializable.

    Supported field types: bool, int, float, bytes, str, and lists of
    ints.  Encoding is per-field and self-describing, so the format
    survives field reordering only if both sides share the class — the
    same constraint a C++ ``serialize`` method has.
    """

    def wrap(klass):
        if not dataclasses.is_dataclass(klass):
            raise SerializationError(
                f"ship_struct requires a dataclass, got {klass.__name__}"
            )

        def serialize(self) -> bytes:
            chunks = []
            for fld in dataclasses.fields(self):
                chunks.append(_encode_field(getattr(self, fld.name)))
            return b"".join(chunks)

        def deserialize(kls, data: bytes):
            values = []
            offset = 0
            for fld in dataclasses.fields(kls):
                if offset >= len(data):
                    raise SerializationError(
                        f"truncated {kls.__name__} payload"
                    )
                value, offset = _decode_field(data, offset)
                values.append(value)
            return kls(*values)

        klass.serialize = serialize
        klass.deserialize = classmethod(deserialize)
        ShipSerializable.register(klass)
        register_serializable(klass, tag)
        return klass

    return wrap(cls) if cls is not None else wrap


def clear_user_registry() -> None:
    """Remove all non-builtin registrations (test isolation helper)."""
    builtin_tags = {1, 2, 3, 4, 5}
    for tag in [t for t in _REGISTRY if t not in builtin_tags]:
        cls = _REGISTRY.pop(tag)
        _TAGS.pop(cls, None)
