"""The SHIP channel.

SHIP (SystemC High-level Interface Protocol) models *directed
point-to-point connections between two communication entities*.  The
channel offers the four blocking interface method calls from the paper —
``send``, ``recv``, ``request`` and ``reply`` — as generator methods
(``yield from``) and transports any registered SHIP-serializable object.

Key properties reproduced from the paper:

* **Serialization**: by default every transferred object is run through
  ``serialize``/``deserialize`` (the channel really moves byte streams,
  which is what later lets the same channel span the HW/SW boundary).
  ``zero_copy=True`` passes references instead — the PV-speed ablation
  of experiment E7.
* **Master/slave tracking**: each endpoint records which interface
  methods it used, feeding automatic role detection (experiment E4).
* **Abstraction-level timing**: the untimed channel is the
  component-assembly model's communication primitive; attaching a
  :class:`ShipTiming` gives the CCATB view (a latency per transaction
  boundary) without touching PE code.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Set

from repro.kernel.errors import SimTimeoutError, SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.ship.roles import Role, classify, roles_consistent
from repro.ship.serializable import (
    ShipSerializable,
    decode_message,
    encode_message,
)
from repro.trace.transaction import TransactionRecorder


class ShipTimeoutError(SimTimeoutError):
    """A SHIP interface call's deadline expired before it completed.

    Raised by ``send``/``recv``/``request``/``reply`` when called with a
    ``timeout`` and the blocking condition (peer consuming, message
    arriving, reply returning) does not resolve in time.  A timed-out
    ``request`` abandons its reply slot: a late ``reply`` from the peer
    is counted in :attr:`ShipChannel.replies_dropped` and discarded
    instead of crashing the slave.
    """


class ShipEnd(enum.Enum):
    """The two endpoints of a point-to-point SHIP channel."""

    A = "a"
    B = "b"

    @property
    def other(self) -> "ShipEnd":
        """The opposite endpoint."""
        return ShipEnd.B if self is ShipEnd.A else ShipEnd.A


@dataclass
class ShipTiming:
    """Transaction-boundary timing annotation for a SHIP channel.

    ``transfer_time(nbytes) = base_latency + nbytes * per_byte``.  With
    the default (all zero) the channel is untimed, i.e. the
    component-assembly model.
    """

    base_latency: SimTime = ZERO_TIME
    per_byte: SimTime = ZERO_TIME

    def transfer_time(self, nbytes: int) -> SimTime:
        """Transfer duration for a payload of ``nbytes``."""
        return SimTime._from_fs(self.transfer_time_fs(nbytes))

    def transfer_time_fs(self, nbytes: int) -> int:
        """Transfer duration as integer femtoseconds (hot-path form:
        the untimed common case costs two int reads and no allocation)."""
        return self.base_latency._fs + self.per_byte._fs * nbytes


class _Message:
    __slots__ = ("kind", "data", "obj", "txn_id", "nbytes", "sent_at")

    def __init__(self, kind, data, obj, txn_id, nbytes, sent_at):
        self.kind = kind        # "send" or "request"
        self.data = data        # framed bytes (None when zero_copy)
        self.obj = obj          # original object (zero_copy) or None
        self.txn_id = txn_id    # for requests
        self.nbytes = nbytes
        self.sent_at = sent_at


class _Endpoint:
    """Book-keeping for one channel end."""

    __slots__ = ("owner_name", "calls_used", "bytes_sent", "messages_sent")

    def __init__(self):
        self.owner_name: Optional[str] = None
        self.calls_used: Set[str] = set()
        self.bytes_sent = 0
        self.messages_sent = 0


class ShipChannel(SimObject):
    """A directed point-to-point SHIP message-passing channel.

    Parameters
    ----------
    capacity:
        Maximum queued messages per direction before ``send`` blocks.
    zero_copy:
        Pass object references instead of serialized byte streams.
    timing:
        Optional :class:`ShipTiming` annotation (CCATB refinement).
    recorder:
        Optional :class:`TransactionRecorder` capturing completed
        transfers.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        capacity: int = 8,
        zero_copy: bool = False,
        timing: Optional[ShipTiming] = None,
        recorder: Optional[TransactionRecorder] = None,
    ):
        super().__init__(name, parent, ctx)
        if capacity < 1:
            raise SimulationError(
                f"ship channel {name!r}: capacity must be >= 1"
            )
        self.capacity = capacity
        self.zero_copy = zero_copy
        self.timing = timing or ShipTiming()
        self.recorder = recorder
        self._endpoints: Dict[ShipEnd, _Endpoint] = {
            ShipEnd.A: _Endpoint(),
            ShipEnd.B: _Endpoint(),
        }
        self._claimed: Dict[ShipEnd, object] = {}
        #: messages in flight from each end toward the other
        self._queues: Dict[ShipEnd, deque] = {
            ShipEnd.A: deque(),
            ShipEnd.B: deque(),
        }
        self._data_events = {
            ShipEnd.A: Event(self, f"{self.full_name}.data_a"),
            ShipEnd.B: Event(self, f"{self.full_name}.data_b"),
        }
        self._space_events = {
            ShipEnd.A: Event(self, f"{self.full_name}.space_a"),
            ShipEnd.B: Event(self, f"{self.full_name}.space_b"),
        }
        #: txn_id -> [reply payload or None, Event]
        self._pending_replies: Dict[int, list] = {}
        #: per end: requests received and not yet replied to (FIFO)
        self._unanswered: Dict[ShipEnd, deque] = {
            ShipEnd.A: deque(),
            ShipEnd.B: deque(),
        }
        self._txn_ids = itertools.count(1)
        #: Optional link fault injector (``repro.faults.LinkFaultInjector``
        #: duck type): consulted once per transmitted message.  None keeps
        #: the channel on the fault-free path (a single attribute test).
        self.fault_injector = None
        #: Replies that arrived after their requester timed out and
        #: abandoned the transaction; they are dropped, not delivered.
        self.replies_dropped = 0

    # -- endpoint management ---------------------------------------------------

    def claim_end(self, owner) -> ShipEnd:
        """Assign a free endpoint to ``owner`` (a port or module)."""
        for end in (ShipEnd.A, ShipEnd.B):
            if end not in self._claimed:
                self._claimed[end] = owner
                self._endpoints[end].owner_name = getattr(
                    owner, "full_name", str(owner)
                )
                return end
        raise SimulationError(
            f"ship channel {self.full_name} already has two endpoints "
            f"(point-to-point only)"
        )

    def endpoint_owner(self, end: ShipEnd) -> Optional[str]:
        """Name of the object that claimed this end."""
        return self._endpoints[end].owner_name

    # -- the four SHIP interface method calls -----------------------------------

    def send(self, end: ShipEnd, obj: ShipSerializable,
             timeout: Optional[SimTime] = None) -> Generator:
        """Blocking one-way transfer toward the other endpoint.

        With ``timeout`` given, the whole call (wire latency plus any
        wait for queue space) must complete within that much simulated
        time or :class:`ShipTimeoutError` is raised.
        """
        yield from self._transmit(end, obj, "send", txn_id=None,
                                  timeout=timeout)

    def recv(self, end: ShipEnd,
             timeout: Optional[SimTime] = None) -> Generator:
        """Blocking receive; returns the next message from the peer.

        If the message was sent with ``request``, this endpoint owes a
        ``reply`` (FIFO order).  With ``timeout`` given, raises
        :class:`ShipTimeoutError` if no message arrives in time.
        """
        self._note_call(end, "recv")
        source = end.other
        queue = self._queues[source]
        if timeout is None:
            while not queue:
                yield self._data_events[end]
        else:
            deadline_fs = self.ctx._now_fs + timeout._fs
            while not queue:
                remaining_fs = deadline_fs - self.ctx._now_fs
                if remaining_fs > 0:
                    wake = yield (SimTime._from_fs(remaining_fs),
                                  self._data_events[end])
                    if wake is not None or queue:
                        continue
                raise ShipTimeoutError(
                    f"ship channel {self.full_name}: recv at end "
                    f"{end.value} timed out after {timeout}"
                )
        msg = queue.popleft()
        self._space_events[source].notify()
        obj = self._materialize(msg)
        if msg.kind == "request":
            self._unanswered[end].append(msg.txn_id)
        if self.recorder is not None:
            self.recorder.record(
                channel=self.full_name,
                kind=msg.kind,
                initiator=self._endpoints[source].owner_name or source.value,
                target=self._endpoints[end].owner_name or end.value,
                begin=msg.sent_at,
                end=self.ctx.now,
                nbytes=msg.nbytes,
            )
        return obj

    def request(self, end: ShipEnd, obj: ShipSerializable,
                timeout: Optional[SimTime] = None) -> Generator:
        """Blocking round trip: transfer ``obj``, wait for the reply.

        With ``timeout`` given, the whole round trip must complete
        within that much simulated time or :class:`ShipTimeoutError` is
        raised; the pending reply slot is abandoned, so a late reply is
        dropped (see :attr:`replies_dropped`) instead of delivered.
        """
        txn_id = next(self._txn_ids)
        done = Event(self, f"{self.full_name}.reply_{txn_id}")
        slot = [None, done]
        self._pending_replies[txn_id] = slot
        if timeout is None:
            yield from self._transmit(end, obj, "request", txn_id=txn_id)
            while self._pending_replies.get(txn_id) is not None:
                yield done
            return slot[0]
        deadline_fs = self.ctx._now_fs + timeout._fs
        try:
            yield from self._transmit(end, obj, "request", txn_id=txn_id,
                                      timeout=timeout,
                                      deadline_fs=deadline_fs)
            while self._pending_replies.get(txn_id) is not None:
                remaining_fs = deadline_fs - self.ctx._now_fs
                if remaining_fs > 0:
                    wake = yield (SimTime._from_fs(remaining_fs), done)
                    if (wake is not None
                            or self._pending_replies.get(txn_id) is None):
                        continue
                raise ShipTimeoutError(
                    f"ship channel {self.full_name}: request at end "
                    f"{end.value} timed out after {timeout} awaiting "
                    f"reply {txn_id}"
                )
            return slot[0]
        except ShipTimeoutError:
            self._pending_replies.pop(txn_id, None)
            raise

    def reply(self, end: ShipEnd, obj: ShipSerializable,
              timeout: Optional[SimTime] = None) -> Generator:
        """Answer the oldest unanswered ``request`` received at this end.

        With ``timeout`` given, a modeled transfer time longer than the
        deadline raises :class:`ShipTimeoutError` after the budget is
        burned (the reply is not delivered).  If the requester already
        abandoned the transaction (its own timeout expired) the reply is
        silently dropped and counted in :attr:`replies_dropped`.
        """
        self._note_call(end, "reply")
        if not self._unanswered[end]:
            raise SimulationError(
                f"ship channel {self.full_name}: reply() with no "
                f"outstanding request at end {end.value}"
            )
        txn_id = self._unanswered[end].popleft()
        nbytes = self._wire_size(obj)
        delay_fs = self.timing.transfer_time_fs(nbytes)
        if timeout is not None and delay_fs > timeout._fs:
            if timeout._fs:
                yield timeout
            self._unanswered[end].appendleft(txn_id)  # still owed
            raise ShipTimeoutError(
                f"ship channel {self.full_name}: reply at end "
                f"{end.value} cannot complete within {timeout} "
                f"(transfer takes {SimTime._from_fs(delay_fs)})"
            )
        if delay_fs:
            yield SimTime._from_fs(delay_fs)
        slot = self._pending_replies.pop(txn_id, None)
        self._endpoints[end].bytes_sent += nbytes
        self._endpoints[end].messages_sent += 1
        if slot is None:
            self.replies_dropped += 1
            inj = self.fault_injector
            if inj is not None:
                inj.on_reply_dropped(self, end, txn_id)
            return
        slot[0] = self._roundtrip(obj)
        slot[1].notify()

    # -- internals ---------------------------------------------------------------

    def _note_call(self, end: ShipEnd, call: str) -> None:
        self._endpoints[end].calls_used.add(call)

    def _wire_size(self, obj: ShipSerializable) -> int:
        if self.zero_copy:
            # Reference passing: the logical size still matters for the
            # timing annotation, so compute it cheaply when possible.
            serialize = getattr(obj, "serialize", None)
            return len(serialize()) if serialize is not None else 0
        return len(encode_message(obj))

    def _roundtrip(self, obj: ShipSerializable):
        """Serialize/deserialize (or pass through when zero_copy)."""
        if self.zero_copy:
            return obj
        decoded, _ = decode_message(encode_message(obj))
        return decoded

    def _materialize(self, msg: _Message):
        if msg.obj is not None:
            return msg.obj
        decoded, _ = decode_message(msg.data)
        return decoded

    def _transmit(self, end, obj, kind, txn_id,
                  timeout: Optional[SimTime] = None,
                  deadline_fs: Optional[int] = None) -> Generator:
        self._note_call(end, kind)
        if self.zero_copy:
            data, payload_obj = None, obj
            nbytes = self._wire_size(obj)
        else:
            data = encode_message(obj)
            payload_obj = None
            nbytes = len(data)
        delay_fs = self.timing.transfer_time_fs(nbytes)
        deliver = True
        inj = self.fault_injector
        if inj is not None:
            deliver, data, extra_fs = inj.on_message(
                self, end, kind, data, nbytes
            )
            delay_fs += extra_fs
        if timeout is not None and deadline_fs is None:
            deadline_fs = self.ctx._now_fs + timeout._fs
        if deadline_fs is not None:
            remaining_fs = deadline_fs - self.ctx._now_fs
            if delay_fs > remaining_fs:
                if remaining_fs > 0:
                    yield SimTime._from_fs(remaining_fs)
                raise ShipTimeoutError(
                    f"ship channel {self.full_name}: {kind} at end "
                    f"{end.value} timed out after "
                    f"{timeout or SimTime._from_fs(remaining_fs)} "
                    f"(transfer takes {SimTime._from_fs(delay_fs)})"
                )
        if delay_fs:
            yield SimTime._from_fs(delay_fs)
        ep = self._endpoints[end]
        if not deliver:
            # Lost on the wire: the sender pays the latency and its
            # accounting is updated, but nothing reaches the peer.
            ep.bytes_sent += nbytes
            ep.messages_sent += 1
            return
        queue = self._queues[end]
        if deadline_fs is None:
            while len(queue) >= self.capacity:
                yield self._space_events[end]
        else:
            while len(queue) >= self.capacity:
                remaining_fs = deadline_fs - self.ctx._now_fs
                if remaining_fs > 0:
                    wake = yield (SimTime._from_fs(remaining_fs),
                                  self._space_events[end])
                    if wake is not None or len(queue) < self.capacity:
                        continue
                raise ShipTimeoutError(
                    f"ship channel {self.full_name}: {kind} at end "
                    f"{end.value} timed out waiting for queue space"
                )
        queue.append(
            _Message(kind, data, payload_obj, txn_id, nbytes, self.ctx.now)
        )
        ep.bytes_sent += nbytes
        ep.messages_sent += 1
        self._data_events[end.other].notify()

    # -- checkpoint/restore protocol (see repro.snapshot) --------------------

    def __snapshot_events__(self):
        return (
            self._data_events[ShipEnd.A], self._data_events[ShipEnd.B],
            self._space_events[ShipEnd.A], self._space_events[ShipEnd.B],
        )

    def __snapshot__(self) -> dict:
        from repro.snapshot.state import SnapshotError

        if self._pending_replies:
            raise SnapshotError(
                f"ship channel {self.full_name}: "
                f"{len(self._pending_replies)} request(s) awaiting replies "
                "— not a checkpointable instant"
            )
        queues = {}
        for end, queue in self._queues.items():
            records = []
            for msg in queue:
                if msg.obj is not None:
                    raise SnapshotError(
                        f"ship channel {self.full_name}: zero-copy message "
                        "in flight cannot be serialized"
                    )
                records.append({
                    "kind": msg.kind,
                    "data": msg.data.hex(),
                    "txn_id": msg.txn_id,
                    "nbytes": msg.nbytes,
                    "sent_at_fs": msg.sent_at._fs,
                })
            queues[end.value] = records
        return {
            "queues": queues,
            "endpoints": {
                end.value: {
                    "calls_used": sorted(ep.calls_used),
                    "bytes_sent": ep.bytes_sent,
                    "messages_sent": ep.messages_sent,
                }
                for end, ep in self._endpoints.items()
            },
            "unanswered": {
                end.value: list(ids) for end, ids in self._unanswered.items()
            },
            "next_txn_id": next(self._txn_ids),
            "replies_dropped": self.replies_dropped,
        }

    def __restore__(self, state: dict) -> None:
        for end in ShipEnd:
            queue = self._queues[end]
            queue.clear()
            for record in state["queues"][end.value]:
                queue.append(_Message(
                    record["kind"],
                    bytes.fromhex(record["data"]),
                    None,
                    record["txn_id"],
                    record["nbytes"],
                    SimTime._from_fs(record["sent_at_fs"]),
                ))
            ep = self._endpoints[end]
            payload = state["endpoints"][end.value]
            ep.calls_used = set(payload["calls_used"])
            ep.bytes_sent = payload["bytes_sent"]
            ep.messages_sent = payload["messages_sent"]
            self._unanswered[end] = deque(state["unanswered"][end.value])
        self._txn_ids = itertools.count(state["next_txn_id"])
        self.replies_dropped = state["replies_dropped"]

    # -- role detection ------------------------------------------------------------

    def detected_role(self, end: ShipEnd) -> Role:
        """Role of one endpoint from its observed interface calls."""
        return classify(self._endpoints[end].calls_used)

    def detected_roles(self) -> Dict[ShipEnd, Role]:
        """Role per endpoint from observed calls."""
        return {end: self.detected_role(end) for end in ShipEnd}

    def master_end(self) -> Optional[ShipEnd]:
        """The endpoint detected as master, if determined."""
        for end in ShipEnd:
            if self.detected_role(end) is Role.MASTER:
                return end
        return None

    def roles_consistent(self) -> bool:
        """True when endpoint roles can coexist."""
        return roles_consistent(
            self.detected_role(ShipEnd.A), self.detected_role(ShipEnd.B)
        )

    # -- statistics ------------------------------------------------------------------

    def bytes_sent(self, end: ShipEnd) -> int:
        """Bytes transmitted from this endpoint."""
        return self._endpoints[end].bytes_sent

    def messages_sent(self, end: ShipEnd) -> int:
        """Messages transmitted from this endpoint."""
        return self._endpoints[end].messages_sent

    def pending_requests(self, end: ShipEnd) -> int:
        """Requests received at ``end`` and not yet replied to."""
        return len(self._unanswered[end])
