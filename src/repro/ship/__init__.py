"""``repro.ship`` — the SystemC High-level Interface Protocol (SHIP).

SHIP is the paper's lightweight transaction-based protocol for directed
point-to-point communication between processing elements, independent of
HW/SW partitioning.  The package provides:

* :class:`ShipChannel` with the four blocking interface method calls
  ``send`` / ``recv`` / ``request`` / ``reply``;
* the ``ship_serializable_if`` equivalent (:class:`ShipSerializable`,
  built-in wrappers, and the :func:`ship_struct` dataclass decorator);
* SHIP ports for PEs (:class:`ShipPort` and the role-restricted
  :class:`ShipMasterPort` / :class:`ShipSlavePort`);
* automatic master/slave detection (:mod:`repro.ship.roles`).
"""

from repro.ship.channel import (
    ShipChannel,
    ShipEnd,
    ShipTimeoutError,
    ShipTiming,
)
from repro.ship.ports import ShipMasterPort, ShipPort, ShipSlavePort
from repro.ship.roles import (
    ALL_CALLS,
    MASTER_CALLS,
    SLAVE_CALLS,
    Role,
    classify,
    roles_consistent,
)
from repro.ship.serializable import (
    SerializationError,
    ShipBytes,
    ShipFloat,
    ShipInt,
    ShipIntArray,
    ShipSerializable,
    ShipString,
    clear_user_registry,
    decode_message,
    decode_stream,
    encode_message,
    register_serializable,
    registered_tag,
    ship_struct,
)

__all__ = [
    "ALL_CALLS",
    "MASTER_CALLS",
    "Role",
    "SLAVE_CALLS",
    "SerializationError",
    "ShipBytes",
    "ShipChannel",
    "ShipEnd",
    "ShipFloat",
    "ShipInt",
    "ShipIntArray",
    "ShipMasterPort",
    "ShipPort",
    "ShipSerializable",
    "ShipSlavePort",
    "ShipString",
    "ShipTimeoutError",
    "ShipTiming",
    "classify",
    "clear_user_registry",
    "decode_message",
    "decode_stream",
    "encode_message",
    "register_serializable",
    "registered_tag",
    "roles_consistent",
    "ship_struct",
]
