"""Automatic master/slave detection from SHIP call usage.

The paper: *"While PEs that exclusively use the send and request
functions implicitly represent a communication master, recv and reply
are slave methods. When consequently applied, this allows for automatic
master/slave detection."*

Every SHIP endpoint records which of the four interface method calls it
has used; :func:`classify` maps a usage set to a :class:`Role`.  The
HW/SW interface generator and the OCP wrappers consume this to decide
which side initiates bus transactions.
"""

from __future__ import annotations

import enum
from typing import Iterable

#: The master-side interface method calls.
MASTER_CALLS = frozenset({"send", "request"})
#: The slave-side interface method calls.
SLAVE_CALLS = frozenset({"recv", "reply"})
ALL_CALLS = MASTER_CALLS | SLAVE_CALLS


class Role(enum.Enum):
    """Communication role of a SHIP endpoint."""

    UNKNOWN = "unknown"  # no calls observed yet
    MASTER = "master"    # only send/request used
    SLAVE = "slave"      # only recv/reply used
    MIXED = "mixed"      # both kinds used — violates the SHIP discipline

    @property
    def is_determined(self) -> bool:
        """True for MASTER or SLAVE."""
        return self in (Role.MASTER, Role.SLAVE)


def classify(calls: Iterable[str]) -> Role:
    """Classify a set of observed interface method calls."""
    used = frozenset(calls)
    unknown = used - ALL_CALLS
    if unknown:
        raise ValueError(f"not SHIP interface method calls: {sorted(unknown)}")
    uses_master = bool(used & MASTER_CALLS)
    uses_slave = bool(used & SLAVE_CALLS)
    if uses_master and uses_slave:
        return Role.MIXED
    if uses_master:
        return Role.MASTER
    if uses_slave:
        return Role.SLAVE
    return Role.UNKNOWN


def roles_consistent(role_a: Role, role_b: Role) -> bool:
    """Check that two endpoint roles can coexist on one channel.

    A channel is consistent when no endpoint is MIXED and the two
    determined roles are not equal (two masters or two slaves on one
    point-to-point channel cannot communicate).
    """
    if Role.MIXED in (role_a, role_b):
        return False
    if role_a.is_determined and role_b.is_determined:
        return role_a is not role_b
    return True
