"""OCP transaction-level interfaces and channels.

Two abstraction levels are provided, matching how the design flow uses
OCP:

* **Blocking transport** (:class:`OcpTargetIf`): one generator call
  carries a whole burst and returns the response.  This is the interface
  the bus CAMs expose and consume; it corresponds to OCP TL2, where
  timing lives in the channel, not in phases.

* **Phased TL1** (:class:`OcpTL1Channel`): explicit request and response
  phases with accept handshakes, used by the pin adapters and wherever
  cycle-level interleaving matters.

Both move the same :class:`~repro.ocp.types.OcpRequest` /
:class:`~repro.ocp.types.OcpResponse` payloads, so refinement between
them is mechanical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Generator, Optional

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.port import Port
from repro.ocp.types import OcpRequest, OcpResponse


class OcpTargetIf(ABC):
    """Blocking-transport OCP target interface.

    Implemented by memory slaves, bus CAM master-attachment points, and
    TLM adapters.  ``transport`` is a generator method: invoke with
    ``response = yield from target.transport(request)``.
    """

    @abstractmethod
    def transport(self, request: OcpRequest) -> Generator:
        """Carry one burst transaction; returns an :class:`OcpResponse`."""


class OcpMasterPort(Port):
    """Master-side port for blocking OCP transport."""

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=OcpTargetIf,
                         required=required)

    def transport(self, request: OcpRequest) -> Generator:
        """Blocking burst transport through the bound target."""
        if request.master_id is None:
            request.master_id = self.full_name
        return (yield from self.channel.transport(request))

    def read(self, addr: int, burst_length: int = 1) -> Generator:
        """Convenience read burst; returns the response."""
        from repro.ocp.types import OcpCmd

        req = OcpRequest(OcpCmd.RD, addr, burst_length=burst_length)
        return (yield from self.transport(req))

    def write(self, addr: int, data) -> Generator:
        """Convenience write burst; returns the response."""
        from repro.ocp.types import OcpCmd

        beats = list(data) if isinstance(data, (list, tuple)) else [data]
        req = OcpRequest(
            OcpCmd.WR, addr, data=beats, burst_length=len(beats)
        )
        return (yield from self.transport(req))


class OcpTL1Channel(SimObject):
    """Phased OCP TL1 channel: request queue + response queue with
    accept handshakes.

    Master side::

        yield from chan.put_request(req)       # blocks until accepted
        resp = yield from chan.get_response()  # blocks until available

    Slave side::

        req = yield from chan.get_request()
        yield from chan.put_response(resp)

    ``request_depth`` models the slave's command-queue depth (OCP's
    SCmdAccept behaviour): a full queue back-pressures the master.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        request_depth: int = 1,
        response_depth: int = 1,
    ):
        super().__init__(name, parent, ctx)
        if request_depth < 1 or response_depth < 1:
            raise SimulationError(
                f"OCP TL1 channel {name!r}: queue depths must be >= 1"
            )
        self.request_depth = request_depth
        self.response_depth = response_depth
        self._requests: deque = deque()
        self._responses: deque = deque()
        self._request_put = Event(self, f"{self.full_name}.request_put")
        self._request_got = Event(self, f"{self.full_name}.request_got")
        self._response_put = Event(self, f"{self.full_name}.response_put")
        self._response_got = Event(self, f"{self.full_name}.response_got")
        self.requests_carried = 0

    # -- master side ----------------------------------------------------------

    def put_request(self, request: OcpRequest) -> Generator:
        """Master: present a request (blocks until accepted)."""
        while len(self._requests) >= self.request_depth:
            yield self._request_got
        self._requests.append(request)
        self.requests_carried += 1
        self._request_put.notify()

    def nb_put_request(self, request: OcpRequest) -> bool:
        """Master: try to present a request; False when full."""
        if len(self._requests) >= self.request_depth:
            return False
        self._requests.append(request)
        self.requests_carried += 1
        self._request_put.notify()
        return True

    def get_response(self) -> Generator:
        """Master: wait for and take the next response."""
        while not self._responses:
            yield self._response_put
        resp = self._responses.popleft()
        self._response_got.notify()
        return resp

    # -- slave side -------------------------------------------------------------

    def get_request(self) -> Generator:
        """Slave: wait for and accept the next request."""
        while not self._requests:
            yield self._request_put
        req = self._requests.popleft()
        self._request_got.notify()
        return req

    def nb_get_request(self) -> Optional[OcpRequest]:
        """Slave: accept a request if present, else None."""
        if not self._requests:
            return None
        req = self._requests.popleft()
        self._request_got.notify()
        return req

    def put_response(self, response: OcpResponse) -> Generator:
        """Slave: present a response (blocks until space)."""
        while len(self._responses) >= self.response_depth:
            yield self._response_got
        self._responses.append(response)
        self._response_put.notify()

    # -- events for sensitivity --------------------------------------------------

    @property
    def request_put_event(self) -> Event:
        """Fires when a request is presented."""
        return self._request_put

    @property
    def response_put_event(self) -> Event:
        """Fires when a response is presented."""
        return self._response_put

    def default_event(self) -> Event:
        """Sensitivity hook: request presented."""
        return self._request_put


class OcpTL1TargetAdapter(SimObject, OcpTargetIf):
    """Adapts blocking transport onto a phased TL1 channel.

    Lets a TL2-style master (e.g. a SHIP wrapper) drive a slave that only
    speaks phased TL1.  Responses are matched in order, which is correct
    for a point-to-point TL1 link (OCP responses are in-order per thread).
    """

    def __init__(self, name, parent=None, ctx=None,
                 channel: Optional[OcpTL1Channel] = None):
        super().__init__(name, parent, ctx)
        if channel is None:
            channel = OcpTL1Channel(f"{name}_chan", self)
        self.tl1 = channel

    def transport(self, request: OcpRequest) -> Generator:
        yield from self.tl1.put_request(request)
        response = yield from self.tl1.get_response()
        return response
