"""Pin-accurate OCP: the signal bundle and pin<->TL adapters.

This is the "pin-level OCP interface" of the paper's flow: the interface
every PE must present once refined to RTL, and the interface the RTL
accessors attach to.  The bundle contains the basic OCP 2.0 dataflow
signals (request group, response group) clocked on a single rising edge:

===========  =========  ==============================================
signal       driver     meaning
===========  =========  ==============================================
MCmd         master     command for the current beat (IDLE when none)
MAddr        master     byte address of the current beat
MData        master     write data for the current beat
MBurstLength master     beats remaining in the burst (incl. current)
MByteEn      master     byte-enable mask
SCmdAccept   slave      request-beat handshake
SResp        slave      response code for the current response beat
SData        slave      read data for the current response beat
===========  =========  ==============================================

Per OCP, a request beat transfers on a rising clock edge where the
master drives ``MCmd != IDLE`` and the slave drives ``SCmdAccept = 1``;
a response beat transfers on an edge where ``SResp != NULL`` (response
accept is tied off high, a legal OCP configuration).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.kernel.clock import Clock
from repro.kernel.module import Module
from repro.kernel.object import SimObject
from repro.kernel.signal import Signal
from repro.kernel.sync import Mutex
from repro.ocp.tl import OcpTargetIf
from repro.ocp.types import OcpCmd, OcpRequest, OcpResp, OcpResponse

# Enum ``.value`` goes through a descriptor on every access; these two
# are read every clock edge of every pin-level model, so bind them once.
_IDLE = OcpCmd.IDLE.value
_NULL = OcpResp.NULL.value


class OcpPinBundle(SimObject):
    """The OCP signal group between one master and one slave."""

    def __init__(self, name, parent=None, ctx=None, clock: Clock = None):
        super().__init__(name, parent, ctx)
        if clock is None:
            raise ValueError(f"OCP pin bundle {name!r} needs a clock")
        self.clock = clock
        # Request group (master-driven).  Writer checks are disabled
        # because adapters hand the bundle between helper processes.
        self.m_cmd = Signal("MCmd", self, init=OcpCmd.IDLE.value,
                            check_writer=False)
        self.m_addr = Signal("MAddr", self, init=0, check_writer=False)
        self.m_data = Signal("MData", self, init=0, check_writer=False)
        self.m_burst_length = Signal("MBurstLength", self, init=0,
                                     check_writer=False)
        self.m_byte_en = Signal("MByteEn", self, init=0xF, check_writer=False)
        # Response group (slave-driven).
        self.s_cmd_accept = Signal("SCmdAccept", self, init=False,
                                   check_writer=False)
        self.s_resp = Signal("SResp", self, init=OcpResp.NULL.value,
                             check_writer=False)
        self.s_data = Signal("SData", self, init=0, check_writer=False)

    def idle_request(self) -> None:
        """Master helper: drive the request group idle."""
        self.m_cmd.write(_IDLE)
        self.m_burst_length.write(0)

    def idle_response(self) -> None:
        """Slave helper: drive the response group idle."""
        self.s_resp.write(_NULL)

    @property
    def request_active(self) -> bool:
        """True while the master presents a request beat."""
        return self.m_cmd.read() != _IDLE

    @property
    def response_active(self) -> bool:
        """True while the slave presents a response beat."""
        return self.s_resp.read() != _NULL


class OcpPinMaster(SimObject, OcpTargetIf):
    """Drives a pin bundle from blocking-transport calls.

    The refinement shim for a TL master talking to a pin-level slave:
    presents :class:`OcpTargetIf` upward, wiggles pins downward with a
    cycle-true request/response state machine.  Concurrent transports
    from multiple processes serialize on an internal mutex, as they
    would on the physical socket.
    """

    def __init__(self, name, parent=None, ctx=None,
                 bundle: OcpPinBundle = None):
        super().__init__(name, parent, ctx)
        if bundle is None:
            raise ValueError(f"OcpPinMaster {name!r} needs a pin bundle")
        self.bundle = bundle
        self._lock = Mutex("lock", self)
        self.transactions = 0

    def transport(self, request: OcpRequest) -> Generator:
        bundle = self.bundle
        clk_edge = bundle.clock.posedge_event
        yield from self._lock.lock()
        try:
            # --- request phase: one beat per accepted cycle ---------------
            for beat in range(request.burst_length):
                bundle.m_cmd.write(request.cmd.value)
                bundle.m_addr.write(request.beat_address(beat))
                bundle.m_burst_length.write(request.burst_length - beat)
                if request.byte_en is not None:
                    bundle.m_byte_en.write(request.byte_en)
                if request.cmd.is_write:
                    bundle.m_data.write(request.data[beat])
                # Hold the beat until a rising edge samples it accepted.
                while True:
                    yield clk_edge
                    if bundle.s_cmd_accept.read():
                        break
            bundle.idle_request()
            # --- response phase -------------------------------------------
            expected = (
                request.burst_length if request.cmd.is_read
                else (1 if request.cmd is OcpCmd.WRNP else 0)
            )
            data = []
            resp_code = OcpResp.DVA
            for _ in range(expected):
                while True:
                    yield clk_edge
                    code = bundle.s_resp.read()
                    if code != _NULL:
                        break
                resp_code = OcpResp(code)
                data.append(bundle.s_data.read())
            self.transactions += 1
            if request.cmd.is_read:
                return OcpResponse(resp_code, data)
            return OcpResponse(resp_code)
        finally:
            self._lock.unlock()


class OcpPinSlave(Module):
    """Samples a pin bundle and forwards bursts to a TL target.

    The inverse shim: a pin-level master (e.g. an RTL PE) on one side, a
    blocking-transport target (memory model, bus attachment point) on the
    other.  ``accept_latency`` stalls SCmdAccept for that many cycles on
    the first beat of each burst, modeling slave-side decode time.
    """

    def __init__(self, name, parent=None, ctx=None,
                 bundle: OcpPinBundle = None,
                 target: Optional[OcpTargetIf] = None,
                 accept_latency: int = 0):
        super().__init__(name, parent, ctx)
        if bundle is None:
            raise ValueError(f"OcpPinSlave {name!r} needs a pin bundle")
        self.bundle = bundle
        self.target = target
        self.accept_latency = accept_latency
        self.bursts_handled = 0
        self.add_thread(self._serve, "serve")

    def _serve(self) -> Generator:
        bundle = self.bundle
        clk_edge = bundle.clock.posedge_event
        bundle.s_cmd_accept.write(False)
        bundle.idle_response()
        while True:
            # Wait for the first beat of a burst.
            yield clk_edge
            if not bundle.request_active:
                continue
            for _ in range(self.accept_latency):
                yield clk_edge
            cmd = OcpCmd(bundle.m_cmd.read())
            first_addr = bundle.m_addr.read()
            burst_length = bundle.m_burst_length.read()
            byte_en = bundle.m_byte_en.read()
            data = []
            # Accept each beat; the master advances after each accepted edge.
            bundle.s_cmd_accept.write(True)
            beats = 0
            while beats < burst_length:
                yield clk_edge
                if not bundle.request_active:
                    continue  # master stalled mid-burst
                if cmd.is_write:
                    data.append(bundle.m_data.read())
                beats += 1
            bundle.s_cmd_accept.write(False)
            request = OcpRequest(
                cmd,
                first_addr,
                data=data,
                burst_length=burst_length,
                byte_en=byte_en,
            )
            if self.target is None:
                response = OcpResponse.error()
            else:
                response = yield from self.target.transport(request)
            # Response phase: one beat per cycle.
            if cmd.is_read:
                beats_out = response.data or [0] * burst_length
                for word in beats_out:
                    bundle.s_resp.write(response.resp.value)
                    bundle.s_data.write(word)
                    yield clk_edge
            elif cmd is OcpCmd.WRNP:
                bundle.s_resp.write(response.resp.value)
                yield clk_edge
            bundle.idle_response()
            self.bursts_handled += 1
