"""``repro.ocp`` — Open Core Protocol interfaces.

OCP is the openly-licensed socket the paper adopts below the CCATB
level.  The package provides the transaction vocabulary
(:class:`OcpRequest` / :class:`OcpResponse`), blocking transport
(:class:`OcpTargetIf`, :class:`OcpMasterPort`), the phased TL1 channel,
and the pin-accurate signal bundle with pin<->TL adapter state machines.
"""

from repro.ocp.monitor import OcpPinMonitor, OcpViolation
from repro.ocp.pin import OcpPinBundle, OcpPinMaster, OcpPinSlave
from repro.ocp.tl import (
    OcpMasterPort,
    OcpTL1Channel,
    OcpTL1TargetAdapter,
    OcpTargetIf,
)
from repro.ocp.types import BurstSeq, OcpCmd, OcpRequest, OcpResp, OcpResponse

__all__ = [
    "BurstSeq",
    "OcpCmd",
    "OcpMasterPort",
    "OcpPinBundle",
    "OcpPinMaster",
    "OcpPinMonitor",
    "OcpPinSlave",
    "OcpViolation",
    "OcpRequest",
    "OcpResp",
    "OcpResponse",
    "OcpTL1Channel",
    "OcpTL1TargetAdapter",
    "OcpTargetIf",
]
