"""OCP (Open Core Protocol) transaction types.

The paper uses OCP below the CCATB level as the *openly-licensed*
socket between processing elements and the communication architecture.
This module defines the protocol vocabulary shared by the TL (transaction
level) channels, the pin-level bundle, and the bus CAM attachment points:
commands, responses, and the request/response payloads with burst
support.

Only the OCP subset the methodology needs is modeled: basic read/write,
incrementing bursts, byte enables, and the DVA/ERR response codes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class OcpCmd(enum.Enum):
    """OCP master command (MCmd).

    ``is_read`` / ``is_write`` are plain per-member attributes (filled in
    right after the class body): command classification happens per beat
    on the pin-accurate hot path, so it must not cost a property call.
    """

    IDLE = 0
    WR = 1    # write
    RD = 2    # read
    RDEX = 3  # exclusive read (used by locking protocols)
    WRNP = 5  # non-posted write (response required)

    is_read: bool
    is_write: bool


for _cmd in OcpCmd:
    _cmd.is_read = _cmd in (OcpCmd.RD, OcpCmd.RDEX)
    _cmd.is_write = _cmd in (OcpCmd.WR, OcpCmd.WRNP)


class OcpResp(enum.Enum):
    """OCP slave response (SResp)."""

    NULL = 0  # no response
    DVA = 1   # data valid / accept
    FAIL = 2  # request failed (exclusive access lost)
    ERR = 3   # error


class BurstSeq(enum.Enum):
    """OCP burst address sequence (MBurstSeq subset)."""

    INCR = 0   # incrementing
    STRM = 1   # streaming (same address)
    WRAP = 2   # wrapping


@dataclass
class OcpRequest:
    """One OCP transaction request (a full burst).

    ``data`` carries one integer word per beat for writes; reads leave it
    empty.  ``addr`` is the byte address of the first beat.
    """

    cmd: OcpCmd
    addr: int
    data: List[int] = field(default_factory=list)
    burst_length: int = 1
    burst_seq: BurstSeq = BurstSeq.INCR
    byte_en: Optional[int] = None     # bitmask over bytes of a word
    master_id: Optional[str] = None   # annotated by bus attachment points
    #: word size in bytes; fixed per socket in real OCP, carried here so
    #: monitors can compute byte counts without socket context
    word_bytes: int = 4

    def __post_init__(self):
        if self.cmd is OcpCmd.IDLE:
            raise ValueError("cannot build an OCP request with MCmd=IDLE")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr:#x}")
        if self.cmd.is_write and len(self.data) != self.burst_length:
            raise ValueError(
                f"write burst of length {self.burst_length} carries "
                f"{len(self.data)} data beats"
            )

    @property
    def nbytes(self) -> int:
        """Total bytes this burst moves."""
        return self.burst_length * self.word_bytes

    def beat_address(self, beat: int) -> int:
        """Byte address of the given beat per the burst sequence."""
        if not 0 <= beat < self.burst_length:
            raise ValueError(
                f"beat {beat} outside burst of {self.burst_length}"
            )
        seq = self.burst_seq
        if seq is BurstSeq.INCR:
            return self.addr + beat * self.word_bytes
        if seq is BurstSeq.STRM:
            return self.addr
        span = self.burst_length * self.word_bytes
        base = (self.addr // span) * span
        return base + (self.addr - base + beat * self.word_bytes) % span

    def __repr__(self) -> str:
        return (
            f"OcpRequest({self.cmd.name} @ {self.addr:#x} x"
            f"{self.burst_length})"
        )


@dataclass
class OcpResponse:
    """One OCP transaction response (a full burst).

    ``data`` carries one word per beat for reads; writes return an empty
    list and just the response code.
    """

    resp: OcpResp
    data: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True for a DVA response."""
        return self.resp is OcpResp.DVA

    @classmethod
    def error(cls) -> "OcpResponse":
        """An ERR response."""
        return cls(OcpResp.ERR)

    @classmethod
    def write_ok(cls) -> "OcpResponse":
        """A successful write response."""
        return cls(OcpResp.DVA)

    @classmethod
    def read_ok(cls, data: List[int]) -> "OcpResponse":
        """A successful read response carrying ``data``."""
        return cls(OcpResp.DVA, list(data))

    def __repr__(self) -> str:
        return f"OcpResponse({self.resp.name}, beats={len(self.data)})"
