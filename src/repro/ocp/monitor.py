"""OCP pin-level protocol monitor.

A passive checker attached to an :class:`~repro.ocp.pin.OcpPinBundle`:
it samples the signal group on every rising clock edge, collects
traffic statistics, and reports protocol violations — the tool a
verification engineer drops on the socket while bringing up an
RTL-refined PE or an accessor.

Checked rules (OCP 2.0 basic dataflow subset):

* **cmd-hold** — once a request beat is presented (``MCmd != IDLE``) it
  must stay unchanged until the slave accepts it (``SCmdAccept``).
* **addr-hold** / **data-hold** — MAddr and MData must be stable while
  the beat is held.
* **resp-without-request** — the slave must not present a response
  beat before any request burst was accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.kernel.module import Module
from repro.obs.metrics import MetricsRegistry
from repro.ocp.pin import OcpPinBundle
from repro.ocp.types import OcpCmd, OcpResp


@dataclass(frozen=True)
class OcpViolation:
    """One observed protocol violation."""

    rule: str
    time_str: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time_str}] {self.rule}: {self.detail}"


class OcpPinMonitor(Module):
    """Passive pin-level OCP protocol checker and statistics counter."""

    def __init__(self, name, parent=None, ctx=None,
                 bundle: OcpPinBundle = None, metrics=None):
        super().__init__(name, parent, ctx)
        if bundle is None:
            raise ValueError(f"monitor {name!r} needs a pin bundle")
        self.bundle = bundle
        self.violations: List[OcpViolation] = []
        # Traffic statistics live in a MetricsRegistry under
        # ``ocp.<full_name>.*`` — pass a shared registry to aggregate
        # several monitors; a private one is created otherwise, so the
        # counter attributes below work either way.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        base = f"ocp.{self.full_name}"
        self._c_request_beats = self.metrics.counter(f"{base}.request_beats")
        self._c_response_beats = self.metrics.counter(
            f"{base}.response_beats"
        )
        self._c_bursts = self.metrics.counter(f"{base}.bursts_started")
        self._c_read_beats = self.metrics.counter(f"{base}.read_beats")
        self._c_write_beats = self.metrics.counter(f"{base}.write_beats")
        self._c_stall_cycles = self.metrics.counter(f"{base}.stall_cycles")
        self._c_idle_cycles = self.metrics.counter(f"{base}.idle_cycles")
        self._c_cycles = self.metrics.counter(f"{base}.cycles_observed")
        self._outstanding_responses = 0
        self.add_thread(self._watch, "watch")

    # -- statistics (registry-backed, read-only attribute views) -----------------

    @property
    def request_beats(self) -> int:
        """Accepted request beats."""
        return self._c_request_beats.value

    @property
    def response_beats(self) -> int:
        """Response beats presented by the slave."""
        return self._c_response_beats.value

    @property
    def bursts_started(self) -> int:
        """Distinct request bursts observed."""
        return self._c_bursts.value

    @property
    def read_beats(self) -> int:
        """Accepted read beats."""
        return self._c_read_beats.value

    @property
    def write_beats(self) -> int:
        """Accepted write beats."""
        return self._c_write_beats.value

    @property
    def stall_cycles(self) -> int:
        """Cycles a request beat was held but not accepted."""
        return self._c_stall_cycles.value

    @property
    def idle_cycles(self) -> int:
        """Cycles with neither request nor response activity."""
        return self._c_idle_cycles.value

    @property
    def cycles_observed(self) -> int:
        """Total rising clock edges sampled."""
        return self._c_cycles.value

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(
            OcpViolation(rule, str(self.ctx.now), detail)
        )

    def _watch(self) -> Generator:
        bundle = self.bundle
        edge = bundle.clock.posedge_event
        held = None          # (cmd, addr, data) of an unaccepted beat
        beats_remaining = 0  # beats left (incl. current) in this burst
        while True:
            yield edge
            self._c_cycles.inc()
            cmd = bundle.m_cmd.read()
            accept = bundle.s_cmd_accept.read()
            resp = bundle.s_resp.read()

            # ---- request group -----------------------------------------
            if cmd != OcpCmd.IDLE.value:
                snapshot = (
                    cmd, bundle.m_addr.read(), bundle.m_data.read()
                )
                if held is not None:
                    self._check_hold(held, snapshot)
                elif beats_remaining == 0:
                    # first sight of a new burst
                    self._c_bursts.inc()
                    burst = max(bundle.m_burst_length.read(), 1)
                    beats_remaining = burst
                    if OcpCmd(cmd).is_read:
                        self._outstanding_responses += burst
                    elif OcpCmd(cmd) is OcpCmd.WRNP:
                        self._outstanding_responses += 1
                if accept:
                    self._c_request_beats.inc()
                    if OcpCmd(cmd).is_read:
                        self._c_read_beats.inc()
                    else:
                        self._c_write_beats.inc()
                    beats_remaining = max(beats_remaining - 1, 0)
                    held = None
                else:
                    self._c_stall_cycles.inc()
                    held = snapshot
            else:
                held = None
                if resp == OcpResp.NULL.value:
                    self._c_idle_cycles.inc()

            # ---- response group ----------------------------------------
            if resp != OcpResp.NULL.value:
                self._c_response_beats.inc()
                if self._outstanding_responses <= 0:
                    self._flag(
                        "resp-without-request",
                        f"SResp={OcpResp(resp).name} with no "
                        f"outstanding request",
                    )
                else:
                    self._outstanding_responses -= 1

    def _check_hold(self, held, snapshot) -> None:
        """A held (unaccepted) beat must stay byte-identical."""
        if snapshot[0] != held[0]:
            self._flag(
                "cmd-hold",
                f"MCmd changed {held[0]} -> {snapshot[0]} while "
                f"unaccepted",
            )
        if snapshot[1] != held[1]:
            self._flag(
                "addr-hold",
                f"MAddr changed {held[1]:#x} -> {snapshot[1]:#x} "
                f"while unaccepted",
            )
        if OcpCmd(held[0]).is_write and snapshot[2] != held[2]:
            self._flag("data-hold", "MData changed while unaccepted")

    # -- reporting --------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    def report(self) -> dict:
        """Statistics dict: cycles, bursts, beats, stalls, violations."""
        return {
            "cycles": self.cycles_observed,
            "bursts": self.bursts_started,
            "request_beats": self.request_beats,
            "response_beats": self.response_beats,
            "read_beats": self.read_beats,
            "write_beats": self.write_beats,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "violations": len(self.violations),
        }
