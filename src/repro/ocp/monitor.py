"""OCP pin-level protocol monitor.

A passive checker attached to an :class:`~repro.ocp.pin.OcpPinBundle`:
it samples the signal group on every rising clock edge, collects
traffic statistics, and reports protocol violations — the tool a
verification engineer drops on the socket while bringing up an
RTL-refined PE or an accessor.

Checked rules (OCP 2.0 basic dataflow subset):

* **cmd-hold** — once a request beat is presented (``MCmd != IDLE``) it
  must stay unchanged until the slave accepts it (``SCmdAccept``).
* **addr-hold** / **data-hold** — MAddr and MData must be stable while
  the beat is held.
* **resp-without-request** — the slave must not present a response
  beat before any request burst was accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.kernel.module import Module
from repro.ocp.pin import OcpPinBundle
from repro.ocp.types import OcpCmd, OcpResp


@dataclass(frozen=True)
class OcpViolation:
    """One observed protocol violation."""

    rule: str
    time_str: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time_str}] {self.rule}: {self.detail}"


class OcpPinMonitor(Module):
    """Passive pin-level OCP protocol checker and statistics counter."""

    def __init__(self, name, parent=None, ctx=None,
                 bundle: OcpPinBundle = None):
        super().__init__(name, parent, ctx)
        if bundle is None:
            raise ValueError(f"monitor {name!r} needs a pin bundle")
        self.bundle = bundle
        self.violations: List[OcpViolation] = []
        # traffic statistics
        self.request_beats = 0
        self.response_beats = 0
        self.bursts_started = 0
        self.read_beats = 0
        self.write_beats = 0
        self.stall_cycles = 0   # request held, not accepted
        self.idle_cycles = 0
        self.cycles_observed = 0
        self._outstanding_responses = 0
        self.add_thread(self._watch, "watch")

    def _flag(self, rule: str, detail: str) -> None:
        self.violations.append(
            OcpViolation(rule, str(self.ctx.now), detail)
        )

    def _watch(self) -> Generator:
        bundle = self.bundle
        edge = bundle.clock.posedge_event
        held = None          # (cmd, addr, data) of an unaccepted beat
        beats_remaining = 0  # beats left (incl. current) in this burst
        while True:
            yield edge
            self.cycles_observed += 1
            cmd = bundle.m_cmd.read()
            accept = bundle.s_cmd_accept.read()
            resp = bundle.s_resp.read()

            # ---- request group -----------------------------------------
            if cmd != OcpCmd.IDLE.value:
                snapshot = (
                    cmd, bundle.m_addr.read(), bundle.m_data.read()
                )
                if held is not None:
                    self._check_hold(held, snapshot)
                elif beats_remaining == 0:
                    # first sight of a new burst
                    self.bursts_started += 1
                    burst = max(bundle.m_burst_length.read(), 1)
                    beats_remaining = burst
                    if OcpCmd(cmd).is_read:
                        self._outstanding_responses += burst
                    elif OcpCmd(cmd) is OcpCmd.WRNP:
                        self._outstanding_responses += 1
                if accept:
                    self.request_beats += 1
                    if OcpCmd(cmd).is_read:
                        self.read_beats += 1
                    else:
                        self.write_beats += 1
                    beats_remaining = max(beats_remaining - 1, 0)
                    held = None
                else:
                    self.stall_cycles += 1
                    held = snapshot
            else:
                held = None
                if resp == OcpResp.NULL.value:
                    self.idle_cycles += 1

            # ---- response group ----------------------------------------
            if resp != OcpResp.NULL.value:
                self.response_beats += 1
                if self._outstanding_responses <= 0:
                    self._flag(
                        "resp-without-request",
                        f"SResp={OcpResp(resp).name} with no "
                        f"outstanding request",
                    )
                else:
                    self._outstanding_responses -= 1

    def _check_hold(self, held, snapshot) -> None:
        """A held (unaccepted) beat must stay byte-identical."""
        if snapshot[0] != held[0]:
            self._flag(
                "cmd-hold",
                f"MCmd changed {held[0]} -> {snapshot[0]} while "
                f"unaccepted",
            )
        if snapshot[1] != held[1]:
            self._flag(
                "addr-hold",
                f"MAddr changed {held[1]:#x} -> {snapshot[1]:#x} "
                f"while unaccepted",
            )
        if OcpCmd(held[0]).is_write and snapshot[2] != held[2]:
            self._flag("data-hold", "MData changed while unaccepted")

    # -- reporting --------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    def report(self) -> dict:
        """Statistics dict: cycles, bursts, beats, stalls, violations."""
        return {
            "cycles": self.cycles_observed,
            "bursts": self.bursts_started,
            "request_beats": self.request_beats,
            "response_beats": self.response_beats,
            "read_beats": self.read_beats,
            "write_beats": self.write_beats,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "violations": len(self.violations),
        }
