"""Simulation time.

Time is represented exactly, as an integer count of *femtoseconds*, the
same approach SystemC takes with its configurable time resolution (the
default SystemC resolution is 1 ps; we use 1 fs so that sub-picosecond
RTL annotations never round).  Exact integer time is essential for a
discrete-event kernel: floating-point time accumulates rounding error and
breaks the "cycle-count accurate at the boundaries" property the CCATB
models rely on.

The public entry points are the :class:`SimTime` value type and the unit
constructors :func:`fs`, :func:`ps`, :func:`ns`, :func:`us`, :func:`ms`
and :func:`sec`.

Example
-------
>>> ns(5) + ps(500)
SimTime(5500 ps)
>>> ns(10) // ns(2)
5
>>> ns(1) < us(1)
True
"""

from __future__ import annotations

import functools
import re
from typing import Union

from repro.kernel.errors import TimeError

#: Femtoseconds per named unit.
_FS_PER_UNIT = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
    "sec": 10**15,
}

_TIME_STRING_RE = re.compile(
    r"^\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>fs|ps|ns|us|ms|sec|s)\s*$"
)

#: Interned SimTime instances keyed by femtosecond count.  A simulation
#: re-creates the same handful of durations (clock phases, bus-cycle
#: latencies, inter-transaction gaps) millions of times; interning makes
#: those constructions a dict hit instead of an allocation.  Bounded so
#: a workload sweeping unique timestamps cannot grow it without limit.
_INTERN_CACHE: dict = {}
_INTERN_CAP = 4096

_object_new = object.__new__


@functools.total_ordering
class SimTime:
    """An exact, immutable point in (or duration of) simulated time.

    ``SimTime`` supports addition and subtraction with other ``SimTime``
    values, multiplication by integers, and true/floor division.  All
    comparisons are exact.

    Instances are ordinarily created through the unit helpers
    (:func:`ns` etc.) rather than directly.
    """

    __slots__ = ("_fs",)

    def __init__(self, femtoseconds: int):
        if not isinstance(femtoseconds, int):
            raise TimeError(
                f"SimTime requires an integer femtosecond count, got "
                f"{type(femtoseconds).__name__}"
            )
        if femtoseconds < 0:
            raise TimeError(f"time cannot be negative: {femtoseconds} fs")
        self._fs = femtoseconds

    # -- construction -------------------------------------------------

    @classmethod
    def _from_fs(cls, femtoseconds: int) -> "SimTime":
        """Trusted fast constructor from a non-negative femtosecond count.

        Kernel-internal: skips the type/sign validation of ``__init__``
        and interns common values.  Callers must guarantee
        ``femtoseconds`` is a non-negative ``int``.
        """
        cached = _INTERN_CACHE.get(femtoseconds)
        if cached is not None:
            return cached
        t = _object_new(cls)
        t._fs = femtoseconds
        if len(_INTERN_CACHE) < _INTERN_CAP:
            _INTERN_CACHE[femtoseconds] = t
        return t

    @classmethod
    def from_value(cls, value: float, unit: str) -> "SimTime":
        """Build a time from a value and unit name (``"ns"``, ``"ps"`` ...).

        Fractional values are allowed as long as they resolve to a whole
        number of femtoseconds.
        """
        try:
            scale = _FS_PER_UNIT[unit]
        except KeyError:
            raise TimeError(f"unknown time unit {unit!r}") from None
        femto = value * scale
        rounded = round(femto)
        if abs(femto - rounded) > 1e-9:
            raise TimeError(
                f"{value} {unit} does not resolve to an integer number of "
                f"femtoseconds"
            )
        if rounded < 0:
            raise TimeError(f"time cannot be negative: {value} {unit}")
        return cls._from_fs(int(rounded))

    @classmethod
    def parse(cls, text: str) -> "SimTime":
        """Parse a time string such as ``"10 ns"`` or ``"2.5us"``."""
        match = _TIME_STRING_RE.match(text)
        if match is None:
            raise TimeError(f"cannot parse time string {text!r}")
        return cls.from_value(float(match.group("value")), match.group("unit"))

    # -- accessors -----------------------------------------------------

    @property
    def femtoseconds(self) -> int:
        """The exact femtosecond count."""
        return self._fs

    def to(self, unit: str) -> float:
        """Convert to a float value in the given unit (may lose precision)."""
        try:
            scale = _FS_PER_UNIT[unit]
        except KeyError:
            raise TimeError(f"unknown time unit {unit!r}") from None
        return self._fs / scale

    @property
    def is_zero(self) -> bool:
        """True for the zero duration."""
        return self._fs == 0

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime._from_fs(self._fs + other._fs)

    def __sub__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs > self._fs:
            raise TimeError(
                f"time subtraction underflow: {self} - {other}"
            )
        return SimTime._from_fs(self._fs - other._fs)

    def __mul__(self, factor: int) -> "SimTime":
        if not isinstance(factor, int):
            return NotImplemented
        return SimTime._from_fs(self._fs * factor)

    __rmul__ = __mul__

    def __floordiv__(self, other: Union["SimTime", int]):
        if isinstance(other, SimTime):
            if other._fs == 0:
                raise ZeroDivisionError("division by zero time")
            return self._fs // other._fs
        if isinstance(other, int):
            return SimTime._from_fs(self._fs // other)
        return NotImplemented

    def __mod__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("modulo by zero time")
        return SimTime._from_fs(self._fs % other._fs)

    def __truediv__(self, other: "SimTime") -> float:
        if not isinstance(other, SimTime):
            return NotImplemented
        if other._fs == 0:
            raise ZeroDivisionError("division by zero time")
        return self._fs / other._fs

    # -- comparison / hashing -------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTime) and self._fs == other._fs

    def __lt__(self, other: "SimTime") -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return self._fs < other._fs

    def __hash__(self) -> int:
        return hash(self._fs)

    def __bool__(self) -> bool:
        return self._fs != 0

    # -- display ---------------------------------------------------------

    def __repr__(self) -> str:
        return f"SimTime({self})"

    def __str__(self) -> str:
        if self._fs == 0:
            return "0 s"
        for unit in ("s", "ms", "us", "ns", "ps", "fs"):
            scale = _FS_PER_UNIT[unit]
            if self._fs % scale == 0:
                return f"{self._fs // scale} {unit}"
        return f"{self._fs} fs"


#: The zero duration, used pervasively as a default.  Interned so the
#: kernel's ``_from_fs(0)`` always returns this exact instance.
ZERO_TIME = SimTime(0)
_INTERN_CACHE[0] = ZERO_TIME


def fs(value: float) -> SimTime:
    """``value`` femtoseconds."""
    return SimTime.from_value(value, "fs")


def ps(value: float) -> SimTime:
    """``value`` picoseconds."""
    return SimTime.from_value(value, "ps")


def ns(value: float) -> SimTime:
    """``value`` nanoseconds."""
    return SimTime.from_value(value, "ns")


def us(value: float) -> SimTime:
    """``value`` microseconds."""
    return SimTime.from_value(value, "us")


def ms(value: float) -> SimTime:
    """``value`` milliseconds."""
    return SimTime.from_value(value, "ms")


def sec(value: float) -> SimTime:
    """``value`` seconds."""
    return SimTime.from_value(value, "sec")
