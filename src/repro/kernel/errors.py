"""Exception hierarchy for the simulation kernel.

All kernel-raised errors derive from :class:`KernelError` so user code can
catch simulation-infrastructure problems separately from modeling bugs.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class ElaborationError(KernelError):
    """Raised for structural problems detected at elaboration time.

    Typical causes: unbound ports, duplicate object names, binding a port
    to a channel that does not implement the required interface.
    """


class SimulationError(KernelError):
    """Raised for illegal actions while the simulation is running."""


class SimTimeoutError(SimulationError):
    """Raised when a blocking operation's deadline expires.

    All timeout-capable primitives (``Fifo`` reads/writes, SHIP calls,
    :func:`~repro.kernel.sync.with_timeout`) raise this or a subclass, so
    resilience code can catch every "gave up waiting" condition at once.
    """


class WatchdogError(SimulationError):
    """Raised when a :class:`~repro.kernel.watchdog.SimWatchdog` fires.

    The message carries the watchdog's hang report: every still-blocked
    process and what it was waiting on when progress stopped.
    """


class ProcessError(SimulationError):
    """Raised for misuse of process primitives.

    Examples: calling a blocking (``yield from``) interface method from a
    method process, yielding an object that is not a wait condition, or
    re-spawning a process that already terminated.
    """


class BindingError(ElaborationError):
    """Raised when a port cannot be bound to the given channel or port."""


class TimeError(KernelError):
    """Raised for invalid time construction or arithmetic (e.g. negative
    durations where only non-negative times are meaningful)."""
