"""Bounded FIFO channel with ``sc_fifo`` semantics.

Reads and writes are blocking generator methods (invoked with
``yield from``); non-blocking variants return success flags.  Visibility
follows SystemC: an item written in delta *n* becomes readable in delta
*n + 1* (counts are updated in the update phase), which keeps
producer/consumer pairs deterministic regardless of process ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Generic, Optional, Tuple, TypeVar

from repro.kernel.errors import SimTimeoutError, SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.port import Port
from repro.kernel.simtime import SimTime
from repro.kernel.sync import wait_with_timeout

T = TypeVar("T")


class Fifo(SimObject, Generic[T]):
    """A bounded, typed FIFO primitive channel."""

    def __init__(self, name, parent=None, ctx=None, capacity: int = 16):
        super().__init__(name, parent, ctx)
        if capacity < 1:
            raise SimulationError(f"fifo {name!r}: capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        #: items written this delta, not yet readable
        self._pending_writes: deque = deque()
        #: number of reads this delta, freeing space next delta
        self._reads_this_delta = 0
        self._update_pending = False
        self._data_written = Event(self, f"{self.full_name}.data_written")
        self._data_read = Event(self, f"{self.full_name}.data_read")
        self.total_written = 0
        self.total_read = 0
        #: Optional occupancy instrument (``repro.obs.instruments
        #: .watch_fifo``); sampled from the update phase when set.
        self._occupancy_gauge = None

    # -- capacity bookkeeping ---------------------------------------------------

    def num_available(self) -> int:
        """Items readable right now."""
        return len(self._items)

    def num_free(self) -> int:
        """Slots writable right now (reads become visible next delta)."""
        return (
            self.capacity
            - len(self._items)
            - len(self._pending_writes)
        )

    # -- non-blocking interface ----------------------------------------------

    def nb_write(self, item: T) -> bool:
        """Write without blocking; returns False if the FIFO is full."""
        if self.num_free() <= 0:
            return False
        self._pending_writes.append(item)
        self.total_written += 1
        self._request_update()
        return True

    def nb_read(self) -> Tuple[bool, Optional[T]]:
        """Read without blocking; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._reads_this_delta += 1
        self.total_read += 1
        self._request_update()
        return True, item

    def peek(self) -> Tuple[bool, Optional[T]]:
        """Look at the next readable item without consuming it."""
        if not self._items:
            return False, None
        return True, self._items[0]

    # -- blocking interface -------------------------------------------------------

    def write(self, item: T, timeout: Optional[SimTime] = None) -> Generator:
        """Blocking write: suspends while the FIFO is full.

        With ``timeout`` given, raises
        :class:`~repro.kernel.errors.SimTimeoutError` if no slot frees
        up within that much simulated time; a write that completes
        exactly at the deadline succeeds.
        """
        if timeout is None:
            while not self.nb_write(item):
                yield self._data_read
            return
        deadline_fs = self.ctx._now_fs + timeout._fs
        while not self.nb_write(item):
            remaining_fs = deadline_fs - self.ctx._now_fs
            if remaining_fs > 0:
                timed_out = yield from wait_with_timeout(
                    self._data_read, SimTime._from_fs(remaining_fs)
                )
                if not timed_out:
                    continue
                if self.nb_write(item):  # space freed at the deadline
                    return
            raise SimTimeoutError(
                f"fifo {self.full_name}: write timed out after {timeout}"
            )

    def read(self, timeout: Optional[SimTime] = None) -> Generator:
        """Blocking read: suspends while the FIFO is empty.

        Returns the item read (via the generator's return value)::

            item = yield from fifo.read()

        With ``timeout`` given, raises
        :class:`~repro.kernel.errors.SimTimeoutError` if no item arrives
        within that much simulated time; an item that becomes readable
        exactly at the deadline is returned.
        """
        if timeout is None:
            while True:
                ok, item = self.nb_read()
                if ok:
                    return item
                yield self._data_written
        deadline_fs = self.ctx._now_fs + timeout._fs
        while True:
            ok, item = self.nb_read()
            if ok:
                return item
            remaining_fs = deadline_fs - self.ctx._now_fs
            if remaining_fs > 0:
                timed_out = yield from wait_with_timeout(
                    self._data_written, SimTime._from_fs(remaining_fs)
                )
                if not timed_out:
                    continue
                ok, item = self.nb_read()  # data arrived at the deadline
                if ok:
                    return item
            raise SimTimeoutError(
                f"fifo {self.full_name}: read timed out after {timeout}"
            )

    #: ``put``/``get`` aliases for callers using queue vocabulary.
    put = write
    get = read

    # -- update phase -------------------------------------------------------------

    def _request_update(self) -> None:
        if not self._update_pending:
            # The _update_pending flag already dedupes, so skip
            # request_update's id()-set and append to the queue directly.
            self._update_pending = True
            self.ctx._update_queue.append(self)

    def _perform_update(self) -> None:
        self._update_pending = False
        if self._pending_writes:
            self._items.extend(self._pending_writes)
            self._pending_writes.clear()
            self._data_written.notify_delta()
        if self._reads_this_delta:
            self._reads_this_delta = 0
            self._data_read.notify_delta()
        gauge = self._occupancy_gauge
        if gauge is not None:
            gauge.set_at(len(self._items), self.ctx._now_fs)

    # -- events --------------------------------------------------------------------

    def default_event(self) -> Event:
        """Sensitivity hook: data-written."""
        return self._data_written

    @property
    def data_written_event(self) -> Event:
        """Fires when items become readable."""
        return self._data_written

    @property
    def data_read_event(self) -> Event:
        """Fires when space becomes writable."""
        return self._data_read

    # -- checkpoint/restore protocol (see repro.snapshot) -------------------

    def __snapshot_events__(self):
        return (self._data_written, self._data_read)

    def __snapshot__(self) -> dict:
        # Quiescent capture means the update phase has drained, so no
        # writes or read-counts can be in flight.
        if self._pending_writes or self._reads_this_delta \
                or self._update_pending:
            from repro.snapshot.state import SnapshotError
            raise SnapshotError(
                f"fifo {self.full_name} has an in-flight update at capture"
            )
        return {
            "items": list(self._items),
            "total_written": self.total_written,
            "total_read": self.total_read,
        }

    def __restore__(self, state: dict) -> None:
        self._items = deque(state["items"])
        self.total_written = state["total_written"]
        self.total_read = state["total_read"]

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"Fifo({self.full_name!r}, {len(self._items)}/{self.capacity})"
        )


class FifoIn(Port):
    """Consumer-side FIFO port."""

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=Fifo, required=required)

    def read(self, timeout: Optional[SimTime] = None) -> Generator:
        """Blocking read through the port (optionally with a timeout)."""
        return (yield from self.channel.read(timeout=timeout))

    def nb_read(self):
        """Non-blocking read; returns ``(ok, item)``."""
        return self.channel.nb_read()

    def num_available(self) -> int:
        """Items readable right now."""
        return self.channel.num_available()

    @property
    def data_written_event(self) -> Event:
        """The channel's data-written event."""
        return self.channel.data_written_event


class FifoOut(Port):
    """Producer-side FIFO port."""

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=Fifo, required=required)

    def write(self, item, timeout: Optional[SimTime] = None) -> Generator:
        """Blocking write through the port (optionally with a timeout)."""
        yield from self.channel.write(item, timeout=timeout)

    def nb_write(self, item) -> bool:
        """Non-blocking write; False when full."""
        return self.channel.nb_write(item)

    def num_free(self) -> int:
        """Slots writable right now."""
        return self.channel.num_free()

    @property
    def data_read_event(self) -> Event:
        """The channel's data-read event."""
        return self.channel.data_read_event
