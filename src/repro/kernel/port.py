"""Ports and exports: typed connection points on modules.

A :class:`Port` requires an interface from *outside* the module; an
:class:`Export` provides an interface implemented *inside* the module to
the outside, exactly like ``sc_port`` / ``sc_export``.

Binding targets:

* a channel object implementing the required interface,
* another port (hierarchical binding, child port → parent port),
* an export (which forwards to its channel).

Binding chains are resolved at elaboration by
:meth:`Port.complete_binding`; unbound required ports raise
:class:`~repro.kernel.errors.BindingError` so wiring mistakes surface
before the first event fires.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.kernel.errors import BindingError
from repro.kernel.object import SimObject


class Export(SimObject):
    """Exposes a channel implemented inside a module to the outside."""

    def __init__(self, name, parent=None, ctx=None, channel=None):
        super().__init__(name, parent, ctx)
        self._channel = channel

    def bind(self, channel) -> None:
        """Attach the exported channel (once)."""
        if self._channel is not None:
            raise BindingError(f"export {self.full_name} is already bound")
        self._channel = channel

    @property
    def channel(self):
        """The exported channel; raises if unbound."""
        if self._channel is None:
            raise BindingError(f"export {self.full_name} is not bound")
        return self._channel


class Port(SimObject):
    """A connection point requiring an interface from outside the module.

    Parameters
    ----------
    iface_type:
        Optional interface class; the resolved channel must be an instance
        of it.  ``None`` disables the check (duck typing).
    required:
        If False, the port may legally remain unbound (``sc_port`` with
        ``SC_ZERO_OR_MORE_BOUND``).
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        iface_type: Optional[Type] = None,
        required: bool = True,
    ):
        super().__init__(name, parent, ctx)
        self.iface_type = iface_type
        self.required = required
        self._bound_to = None
        self._channel = None

    # -- binding -------------------------------------------------------------

    def bind(self, target) -> "Port":
        """Bind to a channel, another port, or an export.

        Returns ``self`` so bindings chain fluently.
        """
        if self._bound_to is not None:
            raise BindingError(
                f"port {self.full_name} is already bound to "
                f"{self._describe(self._bound_to)}"
            )
        self._bound_to = target
        return self

    @staticmethod
    def _describe(target) -> str:
        return getattr(target, "full_name", repr(target))

    def complete_binding(self) -> None:
        """Resolve the binding chain down to a channel (elaboration)."""
        if self._channel is not None:
            return
        target = self._bound_to
        seen = {id(self)}
        while target is not None:
            if isinstance(target, Port):
                if id(target) in seen:
                    raise BindingError(
                        f"port binding cycle involving {self.full_name}"
                    )
                seen.add(id(target))
                target = target._bound_to
            elif isinstance(target, Export):
                target = target.channel
            else:
                break
        if target is None:
            if self.required:
                raise BindingError(f"port {self.full_name} is unbound")
            return
        if self.iface_type is not None and not isinstance(
            target, self.iface_type
        ):
            raise BindingError(
                f"port {self.full_name} requires interface "
                f"{self.iface_type.__name__}, but is bound to "
                f"{type(target).__name__}"
            )
        target_ctx = getattr(target, "ctx", None)
        if target_ctx is not None and target_ctx is not self.ctx:
            # Cross-context wiring silently deadlocks (events live in
            # the other scheduler); fail structurally instead.
            raise BindingError(
                f"port {self.full_name} bound to a channel from a "
                f"different simulation context "
                f"({getattr(target, 'full_name', target)!r})"
            )
        self._channel = target

    @property
    def bound(self) -> bool:
        """True once the binding chain resolved to a channel."""
        return self._channel is not None

    @property
    def channel(self):
        """The resolved channel (after elaboration)."""
        if self._channel is None:
            # Resolve eagerly so pre-elaboration access works when the
            # chain is already complete (common in unit tests).
            self.complete_binding()
        if self._channel is None:
            raise BindingError(f"port {self.full_name} is unbound")
        return self._channel

    # -- sensitivity support --------------------------------------------------

    def default_event(self):
        """Forward to the channel so ports can sit in sensitivity lists."""
        channel = self.channel
        getter = getattr(channel, "default_event", None)
        if getter is None:
            raise BindingError(
                f"channel bound to {self.full_name} has no default event"
            )
        return getter()
