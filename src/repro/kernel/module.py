"""Modules: the structural building block of a model.

A :class:`Module` groups ports, channels, child modules and processes,
mirroring ``sc_module``.  Processes are declared in two equivalent ways:

1. Explicitly in ``__init__``::

       class Producer(Module):
           def __init__(self, name, parent=None, ctx=None):
               super().__init__(name, parent, ctx)
               self.out = FifoOut("out", self)
               self.add_thread(self.run)

           def run(self):
               for i in range(10):
                   yield from self.out.write(i)

2. With decorators and (string-named) sensitivity, resolved after port
   binding::

       class Adder(Module):
           a = ...  # ports created in __init__
           @method_process(sensitive=("a", "b"))
           def compute(self):
               self.y.write(self.a.read() + self.b.read())
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.process import LazySensitivity, MethodProcess, ThreadProcess


def thread_process(
    fn: Optional[Callable] = None,
    *,
    sensitive: Iterable[str] = (),
    dont_initialize: bool = False,
):
    """Decorator marking a generator method as a thread process.

    ``sensitive`` names instance attributes (ports, events, signals) that
    form the static sensitivity list; they are resolved at elaboration.
    """

    def mark(func):
        func._process_decl = ("thread", tuple(sensitive), dont_initialize)
        return func

    return mark(fn) if fn is not None else mark


def method_process(
    fn: Optional[Callable] = None,
    *,
    sensitive: Iterable[str] = (),
    dont_initialize: bool = False,
):
    """Decorator marking a callable method as a method process."""

    def mark(func):
        func._process_decl = ("method", tuple(sensitive), dont_initialize)
        return func

    return mark(fn) if fn is not None else mark


class Module(SimObject):
    """A hierarchical module with processes."""

    def __init__(self, name, parent=None, ctx=None):
        super().__init__(name, parent, ctx)
        self._register_decorated_processes()

    # -- explicit process registration ------------------------------------

    def add_thread(
        self,
        fn: Callable[[], Generator],
        name: Optional[str] = None,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> ThreadProcess:
        """Register ``fn`` (a bound generator method) as a thread process."""
        pname = f"{self.full_name}.{name or fn.__name__}"
        return self.ctx.register_thread(
            fn, pname, sensitive=sensitive, dont_initialize=dont_initialize
        )

    def add_method(
        self,
        fn: Callable[[], None],
        name: Optional[str] = None,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register ``fn`` (a bound callable) as a method process."""
        pname = f"{self.full_name}.{name or fn.__name__}"
        return self.ctx.register_method(
            fn, pname, sensitive=sensitive, dont_initialize=dont_initialize
        )

    # -- decorator-based registration ---------------------------------------

    def _register_decorated_processes(self) -> None:
        for attr_name in dir(type(self)):
            class_attr = getattr(type(self), attr_name, None)
            decl = getattr(class_attr, "_process_decl", None)
            if decl is None:
                continue
            kind, sensitive_names, dont_init = decl
            bound = getattr(self, attr_name)
            sensitivity = ()
            if sensitive_names:
                sensitivity = (
                    LazySensitivity(
                        lambda names=sensitive_names: [
                            getattr(self, n) for n in names
                        ]
                    ),
                )
            if kind == "thread":
                self.add_thread(
                    bound,
                    name=attr_name,
                    sensitive=sensitivity,
                    dont_initialize=dont_init,
                )
            else:
                self.add_method(
                    bound,
                    name=attr_name,
                    sensitive=sensitivity,
                    dont_initialize=dont_init,
                )

    # -- convenience --------------------------------------------------------

    def event(self, name: str) -> Event:
        """Create an event owned by this module."""
        return Event(self, f"{self.full_name}.{name}")

    def next_trigger(self, *args) -> None:
        """From within a method process: override the next activation."""
        proc = self.ctx.current_process
        if not isinstance(proc, MethodProcess):
            from repro.kernel.errors import ProcessError

            raise ProcessError(
                "next_trigger is only legal inside a method process"
            )
        proc.next_trigger(*args)
