"""Simulation watchdog: turn silent in-simulation hangs into reports.

A discrete-event simulation "hangs" in two distinct ways:

* **Global starvation** — nothing is runnable and no notification is
  pending.  ``run`` returns; :meth:`SimContext.starvation_report`
  explains which processes are still blocked.
* **Livelocked progress** — simulated time keeps advancing (a clock, a
  poll loop) but the interesting work is stuck: a master waits forever
  on a slave that never responds.  The run only ends at its horizon,
  hours of wall time later, with no diagnosis.

:class:`SimWatchdog` covers the second case.  It checks a progress
signal every ``timeout`` of *simulated* time; if the signal did not
change between two checks it fires: it builds a hang report naming
every blocked process (via :meth:`SimContext.blocked_processes`) and —
by default — aborts the simulation by raising
:class:`~repro.kernel.errors.WatchdogError` with that report as the
message.

Progress is either polled or heartbeat-driven:

* ``progress=callable`` — any value; unchanged between checks = hang.
  e.g. ``progress=lambda: master.completed``.
* no ``progress`` — heartbeat mode: watched code must call
  :meth:`kick` at least once per ``timeout`` interval.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.kernel.errors import SimulationError, WatchdogError
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime


class SimWatchdog(SimObject):
    """Aborts (or flags) a simulation whose progress signal stalls.

    Parameters
    ----------
    timeout:
        Check interval in simulated time; the watchdog fires when the
        progress signal is unchanged across one full interval.
    progress:
        Zero-argument callable returning the progress value to watch.
        Omitted = heartbeat mode (call :meth:`kick`).
    abort:
        When True (default) a firing watchdog raises
        :class:`WatchdogError`, stopping the run; when False it only
        records :attr:`fired` / :attr:`report` and keeps checking.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        timeout: SimTime = None,
        progress: Optional[Callable[[], object]] = None,
        abort: bool = True,
    ):
        super().__init__(name, parent, ctx)
        if timeout is None or timeout._fs <= 0:
            raise SimulationError(
                f"watchdog {name!r}: timeout must be a positive SimTime"
            )
        self.timeout = timeout
        self.progress = progress
        self.abort = abort
        self._kicks = 0
        #: True once the watchdog has fired at least once.
        self.fired = False
        #: Number of times the watchdog fired (abort=False keeps going).
        self.fire_count = 0
        #: The hang report built the last time the watchdog fired.
        self.report: Optional[str] = None
        self.ctx.register_thread(self._watch, f"{self.full_name}.watch")

    def kick(self) -> None:
        """Heartbeat: proves liveness for the current check interval."""
        self._kicks += 1

    def _progress_value(self):
        if self.progress is not None:
            return self.progress()
        return self._kicks

    def _build_report(self) -> str:
        blocked = self.ctx.blocked_processes()
        lines = [
            f"watchdog {self.full_name} fired at {self.ctx.now}: no "
            f"progress for {self.timeout}",
        ]
        if blocked:
            lines.append(f"{len(blocked)} blocked process(es):")
            for proc, desc in blocked:
                lines.append(
                    f"  - {proc.name} [{proc.kind}] waiting on {desc}"
                )
        else:
            lines.append("no blocked processes (livelock suspected)")
        return "\n".join(lines)

    def _watch(self) -> Generator:
        while True:
            snapshot = self._progress_value()
            yield self.timeout
            if self._progress_value() != snapshot:
                continue
            self.fired = True
            self.fire_count += 1
            self.report = self._build_report()
            self.ctx.reporter.error(
                "watchdog", self.report, time_str=str(self.ctx.now),
                object_name=self.full_name,
            )
            if self.abort:
                raise WatchdogError(self.report)
