"""The simulation context: object registry, elaboration, and scheduler.

:class:`SimContext` owns everything for one simulation: the hierarchy of
simulation objects, the process list, the event queues, and simulated
time.  There is intentionally *no* global context (unlike SystemC's
``sc_get_curr_simcontext``): a context is created explicitly and passed
to top-level modules, which keeps independent simulations isolated and
makes tests hermetic.

Scheduling follows the IEEE 1666 evaluate/update/delta/timed cycle:

1. **Evaluation** — run every runnable process.  Immediate event
   notifications make processes runnable within the same phase.
2. **Update** — primitive channels that called :meth:`request_update`
   perform their update (e.g. a signal copies its next value to its
   current value), typically issuing delta notifications.
3. **Delta notification** — pending delta notifications trigger their
   events, waking processes for the next delta cycle.  If any process
   became runnable, loop back to 1 without advancing time.
4. **Timed notification** — otherwise advance simulated time to the
   earliest pending timed notification and trigger everything scheduled
   at that instant.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Callable, Dict, Generator, List, Optional

from repro.kernel.errors import ElaborationError, SimulationError
from repro.kernel.event import (
    ENTRY_KIND,
    ENTRY_WHEN_FS,
    Event,
    KIND_CANCELLED,
    KIND_EVENT,
    KIND_RESUME,
)
from repro.kernel.process import (
    MethodProcess,
    Process,
    ProcessState,
    ThreadProcess,
    WaitCondition,
    WaitMode,
    sensitivity_events,
)
from repro.kernel.report import Reporter
from repro.kernel.simtime import SimTime, ZERO_TIME


# The timed-notification heap holds plain 4-lists
# ``[when_fs, seq, kind, payload]`` (layout constants in
# :mod:`repro.kernel.event`).  Lists compare element-wise with C-level
# integer comparisons — ``when_fs`` first, then the unique ``seq`` —
# so heap ordering never dispatches into Python-level ``__lt__``
# methods and never compares ``kind``/``payload``.  Cancellation is a
# single in-place write of ``KIND_CANCELLED``; cancelled entries are
# discarded lazily when they surface at the top of the heap.


#: The context currently inside :meth:`SimContext.run` in this process.
#: Exactly one simulation may be running per interpreter process at a
#: time — the isolation precondition parallel sweep workers rely on for
#: bit-identical results (each worker process runs its points' contexts
#: strictly one after another).  Interleaved runs of *different*
#: contexts (a process body spinning up and running a second simulation,
#: or a thread racing two contexts) would share interpreter state in
#: unspecified order, so :meth:`SimContext.run` rejects them.
_active_context: Optional["SimContext"] = None


def active_context() -> Optional["SimContext"]:
    """The :class:`SimContext` currently running in this process, or None."""
    return _active_context


class SimContext:
    """A complete, self-contained simulation."""

    def __init__(
        self,
        name: str = "sim",
        reporter: Optional[Reporter] = None,
        max_deltas_per_timestep: int = 100_000,
    ):
        self.name = name
        self.reporter = reporter if reporter is not None else Reporter()
        self.max_deltas_per_timestep = max_deltas_per_timestep

        #: Canonical current time as integer femtoseconds; ``_now`` is the
        #: equivalent SimTime, refreshed only when time advances.
        self._now_fs: int = 0
        self._now: SimTime = ZERO_TIME
        self._last_activity: SimTime = ZERO_TIME
        self._delta_count: int = 0
        self._deltas_this_timestep: int = 0
        self._seq = itertools.count()

        self._runnable: deque = deque()
        self._update_queue: List = []
        self._update_set: set = set()
        self._delta_events: List[Event] = []
        #: heap of ``[when_fs, seq, kind, payload]`` lists (see above)
        self._timed_heap: List[list] = []

        #: name -> simulation object (modules, ports, channels...)
        self.objects: Dict[str, object] = {}
        #: top-level simulation objects, in creation order
        self.top_objects: List[object] = []
        self.processes: List[Process] = []
        #: (process, raw sensitivity sources) resolved at elaboration
        self._pending_sensitivity: List = []

        self.current_process: Optional[Process] = None
        #: Why the most recent ``run`` ended: None (never ran) or one of
        #: ``"stopped"`` / ``"starved"`` / ``"limit"`` / ``"failed"``.
        self.last_run_outcome: Optional[str] = None
        #: Instrumentation observer (see ``repro.obs.hooks``); None keeps
        #: the scheduler on the hook-free fast path.
        self._obs = None
        self.elaborated = False
        self._stop_requested = False
        self._running = False
        self._failure: Optional[BaseException] = None
        #: Hooks called at end of elaboration / start and end of simulation.
        self._elab_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # time & status
    # ------------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return self._now

    @property
    def delta_count(self) -> int:
        """Total delta cycles executed since the start of simulation."""
        return self._delta_count

    @property
    def last_activity_time(self) -> SimTime:
        """Time the last process ran.

        Unlike :attr:`now`, this does not advance to a run's horizon on
        starvation — it is the workload's actual completion time.
        """
        return self._last_activity

    # ------------------------------------------------------------------
    # object registry
    # ------------------------------------------------------------------

    def register_object(self, obj, parent) -> None:
        """Register a simulation object (called by SimObject)."""
        name = obj.full_name
        if name in self.objects:
            raise ElaborationError(
                f"duplicate simulation object name: {name!r}"
            )
        self.objects[name] = obj
        if parent is None:
            self.top_objects.append(obj)

    def find_object(self, full_name: str):
        """Look up a simulation object by hierarchical name."""
        return self.objects.get(full_name)

    # ------------------------------------------------------------------
    # process registration
    # ------------------------------------------------------------------

    def register_thread(
        self,
        fn: Callable[[], Generator],
        name: str,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> ThreadProcess:
        """Register a thread process (before elaboration)."""
        self._check_not_elaborated("register_thread")
        proc = ThreadProcess(self, name, fn, dont_initialize)
        self.processes.append(proc)
        if sensitive:
            self._pending_sensitivity.append((proc, tuple(sensitive)))
        return proc

    def register_method(
        self,
        fn: Callable[[], None],
        name: str,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a method process (before elaboration)."""
        self._check_not_elaborated("register_method")
        proc = MethodProcess(self, name, fn, dont_initialize)
        self.processes.append(proc)
        if sensitive:
            self._pending_sensitivity.append((proc, tuple(sensitive)))
        return proc

    def spawn(self, fn: Callable[[], Generator], name: str) -> ThreadProcess:
        """Dynamically spawn a thread process during simulation."""
        proc = ThreadProcess(self, name, fn)
        self.processes.append(proc)
        if not self.elaborated:
            return proc
        proc.state = ProcessState.READY
        self._runnable.append(proc)
        return proc

    def unregister_process(self, proc: Process) -> None:
        """Remove a registered process before elaboration.

        Used by the eSW synthesizer, which re-hosts a PE's behaviour
        functions as RTOS tasks and must stop the kernel from also
        running them natively.
        """
        self._check_not_elaborated("unregister_process")
        self.processes.remove(proc)
        self._pending_sensitivity = [
            (p, sources) for p, sources in self._pending_sensitivity
            if p is not proc
        ]

    def processes_of(self, obj) -> List[Process]:
        """Processes whose names live under ``obj``'s hierarchy."""
        prefix = f"{obj.full_name}."
        return [p for p in self.processes if p.name.startswith(prefix)]

    def _check_not_elaborated(self, what: str) -> None:
        if self.elaborated:
            raise ElaborationError(
                f"{what} is only legal before elaboration"
            )

    def _process_failed(self, process: Process, exc: BaseException) -> None:
        """A process raised: record the failure and stop the simulation."""
        if self._failure is None:
            self._failure = exc
        self._stop_requested = True

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------

    def add_elaboration_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at the end of elaboration."""
        self._elab_hooks.append(hook)

    def elaborate(self) -> None:
        """Finalize the design: bind ports, resolve sensitivity, init."""
        if self.elaborated:
            return
        self._elaborate_structure()
        # Initialization phase: every process runs once unless it opted out.
        for proc in self.processes:
            if getattr(proc, "dont_initialize", False):
                proc._apply_wait(WaitCondition(WaitMode.STATIC))
            else:
                proc.state = ProcessState.READY
                self._runnable.append(proc)
        self._run_start_hooks()

    def _elaborate_structure(self) -> None:
        """The structural half of :meth:`elaborate`: binding, sensitivity,
        elaboration hooks — everything except the init-phase process
        queuing and the start-of-simulation hooks.  Snapshot restore
        (``repro.snapshot``) calls this directly and then overlays the
        captured process states instead of initializing them.
        """
        # Give modules a chance to finish construction-time wiring.
        for obj in list(self.objects.values()):
            hook = getattr(obj, "before_end_of_elaboration", None)
            if hook is not None:
                hook()
        # Complete port binding (ports registered themselves at creation).
        for obj in list(self.objects.values()):
            binder = getattr(obj, "complete_binding", None)
            if binder is not None:
                binder()
        # Resolve static sensitivity now that ports are bound.
        for proc, sources in self._pending_sensitivity:
            for ev in sensitivity_events(sources):
                proc.add_static_sensitivity(ev)
        self._pending_sensitivity.clear()
        for obj in list(self.objects.values()):
            hook = getattr(obj, "end_of_elaboration", None)
            if hook is not None:
                hook()
        for hook in self._elab_hooks:
            hook()
        self.elaborated = True

    def _run_start_hooks(self) -> None:
        for obj in list(self.objects.values()):
            hook = getattr(obj, "start_of_simulation", None)
            if hook is not None:
                hook()

    # ------------------------------------------------------------------
    # checkpoint / restore (implemented in repro.snapshot)
    # ------------------------------------------------------------------

    def checkpoint(self, extras: Optional[Dict] = None) -> Dict:
        """Capture full deterministic kernel state as a JSON-able dict.

        The context must be at a quiescent instant — typically right
        after ``run(until=...)`` returned.  ``extras`` maps names to
        non-SimObject state holders (fault plans, metrics registries)
        implementing ``__snapshot__``/``__restore__``.  See
        :mod:`repro.snapshot`.
        """
        from repro.snapshot.state import capture_state
        return capture_state(self, extras=extras)

    def resume(self, snapshot: Dict, extras: Optional[Dict] = None) -> None:
        """Restore a :meth:`checkpoint` snapshot into this fresh context.

        This context must be structurally identical to (a superset of)
        the captured one, freshly built and never run.  Processes absent
        from the snapshot are initialized normally, so measured-phase
        workload can be layered on top of a boot checkpoint.
        """
        from repro.snapshot.state import restore_state
        restore_state(self, snapshot, extras=extras)

    # ------------------------------------------------------------------
    # scheduling services (used by Event, Process, channels)
    # ------------------------------------------------------------------

    def make_runnable(self, process: Process) -> None:
        """Queue a process for the current evaluation phase."""
        self._runnable.append(process)

    def schedule_delta_event(self, event: Event) -> None:
        """Queue an event for the next delta cycle."""
        self._delta_events.append(event)

    def schedule_timed_event(self, event: Event, when: SimTime) -> list:
        """Schedule an event notification at absolute time ``when``.

        Returns the heap entry; setting its kind slot to
        ``KIND_CANCELLED`` cancels the notification.
        """
        return self._schedule_event_fs(event, when._fs)

    def schedule_timed_resume(self, process: Process, when: SimTime) -> list:
        """Schedule a process timeout wake-up at absolute time ``when``."""
        return self._schedule_resume_fs(process, when._fs)

    def _schedule_event_fs(self, event: Event, when_fs: int) -> list:
        """Integer-time fast path for :meth:`schedule_timed_event`."""
        entry = [when_fs, next(self._seq), KIND_EVENT, event]
        heapq.heappush(self._timed_heap, entry)
        return entry

    def _schedule_resume_fs(self, process, when_fs: int) -> list:
        """Integer-time fast path for :meth:`schedule_timed_resume`."""
        entry = [when_fs, next(self._seq), KIND_RESUME, process]
        heapq.heappush(self._timed_heap, entry)
        return entry

    def request_update(self, channel) -> None:
        """Queue ``channel._perform_update`` for the update phase."""
        if id(channel) not in self._update_set:
            self._update_set.add(id(channel))
            self._update_queue.append(channel)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def observer(self):
        """The attached instrumentation observer, or None."""
        return self._obs

    def attach_observer(self, observer) -> None:
        """Install a kernel instrumentation observer.

        ``observer`` follows the :class:`repro.obs.hooks.SimObserver`
        protocol (duck-typed — the kernel does not import the
        observability layer).  While an observer is attached, ``run``
        uses an instrumented twin of the event loop that invokes the
        observer's hooks; with none attached the original hook-free loop
        runs.  Only one observer may be attached at a time; fan out with
        :class:`repro.obs.hooks.ObserverGroup`.
        """
        if self._obs is not None and self._obs is not observer:
            raise SimulationError(
                "an observer is already attached; combine observers with "
                "repro.obs.hooks.ObserverGroup"
            )
        self._obs = observer

    def detach_observer(self, observer=None) -> None:
        """Remove the attached observer (restores the fast path).

        With ``observer`` given, detaches only if it is the one
        currently attached; with None, unconditionally detaches.
        """
        if observer is None or self._obs is observer:
            self._obs = None

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request the simulation to stop at the end of the current delta."""
        self._stop_requested = True

    def run(
        self,
        duration: Optional[SimTime] = None,
        until: Optional[SimTime] = None,
    ) -> SimTime:
        """Run the simulation.

        Parameters
        ----------
        duration:
            Run for this much simulated time from :attr:`now`.
        until:
            Run until this absolute simulated time.

        With neither given, runs until event starvation or :meth:`stop`.
        Returns the simulation time when the run ended.
        """
        global _active_context
        if self._running:
            raise SimulationError(
                "run() called re-entrantly (e.g. from inside a process)"
            )
        if _active_context is not None and _active_context is not self:
            raise SimulationError(
                f"cannot run {self.name!r}: context "
                f"{_active_context.name!r} is already running in this "
                f"process; one process runs one simulation at a time "
                f"(sweep workers isolate points in separate processes)"
            )
        if not self.elaborated:
            self.elaborate()
        if duration is not None and until is not None:
            raise SimulationError("pass either duration or until, not both")
        limit_fs: Optional[int] = None
        if duration is not None:
            limit_fs = self._now_fs + duration._fs
        elif until is not None:
            if until._fs < self._now_fs:
                raise SimulationError(
                    f"cannot run until {until}: already at {self._now}"
                )
            limit_fs = until._fs

        self._stop_requested = False
        self._running = True
        _active_context = self
        try:
            if self._obs is None:
                self._event_loop(limit_fs)
            else:
                self._event_loop_instrumented(limit_fs)
        finally:
            self._running = False
            _active_context = None
        if self._failure is not None:
            self.last_run_outcome = "failed"
            failure, self._failure = self._failure, None
            raise failure
        starved = (not self._stop_requested
                   and (limit_fs is None or self._now_fs < limit_fs))
        if self._stop_requested:
            self.last_run_outcome = "stopped"
        elif starved:
            self.last_run_outcome = "starved"
        else:
            self.last_run_outcome = "limit"
        if starved and self._obs is not None:
            # Starvation with processes still blocked is the normal end
            # of most finite workloads, so this is never printed
            # unsolicited — but an attached observer is told, turning a
            # silent hang into an inspectable record.
            hook = getattr(self._obs, "on_run_starved", None)
            if hook is not None:
                hook(self, self.blocked_processes(), self._now_fs)
        if starved and limit_fs is not None and self._now_fs < limit_fs:
            # Starved before the limit: time still advances to the limit so
            # that consecutive run() calls compose predictably.
            self._now_fs = limit_fs
            self._now = SimTime._from_fs(limit_fs)
        return self._now

    def run_all(self, max_time: Optional[SimTime] = None) -> SimTime:
        """Run until starvation (optionally bounded by ``max_time``)."""
        return self.run(until=max_time) if max_time is not None else self.run()

    # ------------------------------------------------------------------
    # the scheduler proper
    # ------------------------------------------------------------------

    def _event_loop(self, limit_fs: Optional[int]) -> None:
        # NOTE: any scheduling change here must be mirrored in
        # _event_loop_instrumented below (the observer-attached twin).
        # Hot attributes and helpers bound to locals: at millions of
        # iterations the repeated attribute lookups dominate, and none of
        # these objects are rebound elsewhere (the update/delta lists are
        # swapped wholesale, so those stay attribute accesses).
        runnable = self._runnable
        popleft = runnable.popleft
        heap = self._timed_heap
        heappop = heapq.heappop
        max_deltas = self.max_deltas_per_timestep
        while True:
            # -- evaluation phase --------------------------------------
            ran_any = bool(runnable)
            if ran_any:
                self._last_activity = self._now
                while runnable:
                    proc = popleft()
                    self.current_process = proc
                    proc._dispatch()
                    if self._stop_requested:
                        break
                self.current_process = None
                if self._stop_requested:
                    return

            # -- update phase ------------------------------------------
            if self._update_queue:
                updates = self._update_queue
                self._update_queue = []
                self._update_set.clear()
                for channel in updates:
                    channel._perform_update()

            # -- delta notification phase --------------------------------
            if self._delta_events:
                events = self._delta_events
                self._delta_events = []
                for ev in events:
                    ev._fire_scheduled("delta")

            if runnable:
                self._delta_count += 1
                self._deltas_this_timestep += 1
                if self._deltas_this_timestep > max_deltas:
                    raise SimulationError(
                        f"more than {max_deltas} delta "
                        f"cycles at time {self._now}; the model is probably "
                        f"in a zero-time activity loop"
                    )
                continue

            if ran_any and not heap:
                # Give one more pass in case the update phase scheduled work.
                if runnable or self._delta_events or self._update_queue:
                    continue

            # -- timed notification phase --------------------------------
            # Discard cancelled entries that surfaced at the top, then
            # peek (never pop-and-push-back) to test the run horizon.
            while heap and heap[0][2] == KIND_CANCELLED:
                heappop(heap)
            if not heap:
                return  # starvation
            when_fs = heap[0][0]
            if limit_fs is not None and when_fs > limit_fs:
                self._now_fs = limit_fs
                self._now = SimTime._from_fs(limit_fs)
                return
            self._now_fs = when_fs
            self._now = SimTime._from_fs(when_fs)
            self._deltas_this_timestep = 0
            # Single drain of everything scheduled at this instant, in
            # seq order; cancelled entries pop and drop.  Entries pushed
            # *during* firing land in heap order and are picked up too.
            while heap and heap[0][0] == when_fs:
                entry = heappop(heap)
                kind = entry[2]
                if kind == KIND_EVENT:
                    entry[3]._fire_scheduled("timed")
                elif kind == KIND_RESUME:
                    entry[3]._timeout_fired()
            self._delta_count += 1

    def _event_loop_instrumented(self, limit_fs: Optional[int]) -> None:
        """Instrumented twin of :meth:`_event_loop`.

        Kept as a *separate* function so the uninstrumented loop stays
        branch-free (the observability-off hot path is byte-identical to
        the fast path); any scheduling change there must be mirrored
        here.  Adds, per scheduling boundary, one hook call into the
        attached observer plus a ``perf_counter`` pair around each
        process dispatch (the profiler's host-cost source).
        """
        obs = self._obs
        on_activate = obs.on_process_activate
        on_suspend = obs.on_process_suspend
        on_event = obs.on_event_fire
        on_update = obs.on_update_phase
        on_delta = obs.on_delta_cycle
        on_advance = obs.on_time_advance
        perf = time.perf_counter
        runnable = self._runnable
        popleft = runnable.popleft
        heap = self._timed_heap
        heappop = heapq.heappop
        max_deltas = self.max_deltas_per_timestep
        while True:
            # -- evaluation phase --------------------------------------
            ran_any = bool(runnable)
            if ran_any:
                self._last_activity = self._now
                while runnable:
                    proc = popleft()
                    self.current_process = proc
                    now_fs = self._now_fs
                    on_activate(proc, now_fs)
                    start = perf()
                    proc._dispatch()
                    on_suspend(proc, now_fs, perf() - start)
                    if self._stop_requested:
                        break
                self.current_process = None
                if self._stop_requested:
                    return

            # -- update phase ------------------------------------------
            if self._update_queue:
                updates = self._update_queue
                self._update_queue = []
                self._update_set.clear()
                on_update(len(updates), self._now_fs)
                for channel in updates:
                    channel._perform_update()

            # -- delta notification phase --------------------------------
            if self._delta_events:
                events = self._delta_events
                self._delta_events = []
                now_fs = self._now_fs
                for ev in events:
                    if ev._pending_kind == "delta":
                        on_event(ev, "delta", now_fs)
                    ev._fire_scheduled("delta")

            if runnable:
                self._delta_count += 1
                self._deltas_this_timestep += 1
                on_delta(self._delta_count, self._now_fs)
                if self._deltas_this_timestep > max_deltas:
                    raise SimulationError(
                        f"more than {max_deltas} delta "
                        f"cycles at time {self._now}; the model is probably "
                        f"in a zero-time activity loop"
                    )
                continue

            if ran_any and not heap:
                # Give one more pass in case the update phase scheduled work.
                if runnable or self._delta_events or self._update_queue:
                    continue

            # -- timed notification phase --------------------------------
            while heap and heap[0][2] == KIND_CANCELLED:
                heappop(heap)
            if not heap:
                return  # starvation
            when_fs = heap[0][0]
            if limit_fs is not None and when_fs > limit_fs:
                self._now_fs = limit_fs
                self._now = SimTime._from_fs(limit_fs)
                on_advance(limit_fs)
                return
            self._now_fs = when_fs
            self._now = SimTime._from_fs(when_fs)
            self._deltas_this_timestep = 0
            on_advance(when_fs)
            while heap and heap[0][0] == when_fs:
                entry = heappop(heap)
                kind = entry[2]
                if kind == KIND_EVENT:
                    on_event(entry[3], "timed", when_fs)
                    entry[3]._fire_scheduled("timed")
                elif kind == KIND_RESUME:
                    entry[3]._timeout_fired()
            self._delta_count += 1
            on_delta(self._delta_count, when_fs)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    @property
    def pending_activity(self) -> bool:
        """True if any work (runnable, delta, or timed) remains."""
        return bool(
            self._runnable
            or self._delta_events
            or self._update_queue
            or any(e[ENTRY_KIND] != KIND_CANCELLED for e in self._timed_heap)
        )

    def time_of_next_activity(self) -> Optional[SimTime]:
        """Earliest pending timed notification, or None."""
        live = [
            e[ENTRY_WHEN_FS] for e in self._timed_heap
            if e[ENTRY_KIND] != KIND_CANCELLED
        ]
        return SimTime._from_fs(min(live)) if live else None

    def blocked_processes(self) -> List[tuple]:
        """Every WAITING process with a description of its wait.

        Returns ``[(process, description), ...]`` where the description
        names the events (and therefore the owning channel/FIFO, whose
        full name each event carries) or the pending timeout the process
        is suspended on.  This is what the starvation report and the
        watchdog print, so "the sim just returned" becomes "rx is
        blocked on top.fifo.data_written".
        """
        out = []
        for proc in self.processes:
            if proc.state is ProcessState.WAITING:
                out.append((proc, self.describe_wait(proc)))
        return out

    def describe_wait(self, proc: Process) -> str:
        """Human-readable description of what ``proc`` is waiting on."""
        if proc._waiting_static:
            names = ", ".join(ev.name for ev in proc.static_sensitivity)
            return f"static sensitivity [{names or 'empty'}]"
        parts = []
        if proc._pending_all:
            names = ", ".join(sorted(ev.name for ev in proc._pending_all))
            parts.append(f"all of [{names}]")
        elif proc._wait_events:
            names = ", ".join(ev.name for ev in proc._wait_events)
            parts.append(f"event [{names}]")
        handle = proc._timeout_handle
        if handle is not None:
            when = SimTime._from_fs(handle[ENTRY_WHEN_FS])
            parts.append(f"timeout at {when}")
        return " or ".join(parts) if parts else "nothing (suspended)"

    def starvation_report(self) -> str:
        """Multi-line report of every blocked process and its wait.

        Meaningful after a run that ended ``"starved"`` (see
        :attr:`last_run_outcome`) or from a watchdog: explains *why*
        the simulation stopped making progress.
        """
        blocked = self.blocked_processes()
        header = (
            f"simulation {self.name!r} at {self._now} "
            f"(outcome: {self.last_run_outcome or 'not run'}): "
            f"{len(blocked)} blocked process(es)"
        )
        lines = [header]
        for proc, desc in blocked:
            lines.append(f"  - {proc.name} [{proc.kind}] waiting on {desc}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SimContext({self.name!r}, now={self._now}, "
            f"deltas={self._delta_count}, objects={len(self.objects)})"
        )
