"""The simulation context: object registry, elaboration, and scheduler.

:class:`SimContext` owns everything for one simulation: the hierarchy of
simulation objects, the process list, the event queues, and simulated
time.  There is intentionally *no* global context (unlike SystemC's
``sc_get_curr_simcontext``): a context is created explicitly and passed
to top-level modules, which keeps independent simulations isolated and
makes tests hermetic.

Scheduling follows the IEEE 1666 evaluate/update/delta/timed cycle:

1. **Evaluation** — run every runnable process.  Immediate event
   notifications make processes runnable within the same phase.
2. **Update** — primitive channels that called :meth:`request_update`
   perform their update (e.g. a signal copies its next value to its
   current value), typically issuing delta notifications.
3. **Delta notification** — pending delta notifications trigger their
   events, waking processes for the next delta cycle.  If any process
   became runnable, loop back to 1 without advancing time.
4. **Timed notification** — otherwise advance simulated time to the
   earliest pending timed notification and trigger everything scheduled
   at that instant.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Dict, Generator, List, Optional

from repro.kernel.errors import ElaborationError, SimulationError
from repro.kernel.event import Event
from repro.kernel.process import (
    MethodProcess,
    Process,
    ProcessState,
    ThreadProcess,
    WaitCondition,
    WaitMode,
    sensitivity_events,
)
from repro.kernel.report import Reporter
from repro.kernel.simtime import SimTime, ZERO_TIME


class _TimedEntry:
    """One entry in the timed-notification heap."""

    __slots__ = ("when", "seq", "kind", "payload", "cancelled")

    def __init__(self, when: SimTime, seq: int, kind: str, payload):
        self.when = when
        self.seq = seq
        self.kind = kind  # "event" or "resume"
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq


class SimContext:
    """A complete, self-contained simulation."""

    def __init__(
        self,
        name: str = "sim",
        reporter: Optional[Reporter] = None,
        max_deltas_per_timestep: int = 100_000,
    ):
        self.name = name
        self.reporter = reporter if reporter is not None else Reporter()
        self.max_deltas_per_timestep = max_deltas_per_timestep

        self._now: SimTime = ZERO_TIME
        self._last_activity: SimTime = ZERO_TIME
        self._delta_count: int = 0
        self._deltas_this_timestep: int = 0
        self._seq = itertools.count()

        self._runnable: deque = deque()
        self._update_queue: List = []
        self._update_set: set = set()
        self._delta_events: List[Event] = []
        self._timed_heap: List[_TimedEntry] = []

        #: name -> simulation object (modules, ports, channels...)
        self.objects: Dict[str, object] = {}
        #: top-level simulation objects, in creation order
        self.top_objects: List[object] = []
        self.processes: List[Process] = []
        #: (process, raw sensitivity sources) resolved at elaboration
        self._pending_sensitivity: List = []

        self.current_process: Optional[Process] = None
        self.elaborated = False
        self._stop_requested = False
        self._running = False
        self._failure: Optional[BaseException] = None
        #: Hooks called at end of elaboration / start and end of simulation.
        self._elab_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # time & status
    # ------------------------------------------------------------------

    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return self._now

    @property
    def delta_count(self) -> int:
        """Total delta cycles executed since the start of simulation."""
        return self._delta_count

    @property
    def last_activity_time(self) -> SimTime:
        """Time the last process ran.

        Unlike :attr:`now`, this does not advance to a run's horizon on
        starvation — it is the workload's actual completion time.
        """
        return self._last_activity

    # ------------------------------------------------------------------
    # object registry
    # ------------------------------------------------------------------

    def register_object(self, obj, parent) -> None:
        """Register a simulation object (called by SimObject)."""
        name = obj.full_name
        if name in self.objects:
            raise ElaborationError(
                f"duplicate simulation object name: {name!r}"
            )
        self.objects[name] = obj
        if parent is None:
            self.top_objects.append(obj)

    def find_object(self, full_name: str):
        """Look up a simulation object by hierarchical name."""
        return self.objects.get(full_name)

    # ------------------------------------------------------------------
    # process registration
    # ------------------------------------------------------------------

    def register_thread(
        self,
        fn: Callable[[], Generator],
        name: str,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> ThreadProcess:
        """Register a thread process (before elaboration)."""
        self._check_not_elaborated("register_thread")
        proc = ThreadProcess(self, name, fn, dont_initialize)
        self.processes.append(proc)
        if sensitive:
            self._pending_sensitivity.append((proc, tuple(sensitive)))
        return proc

    def register_method(
        self,
        fn: Callable[[], None],
        name: str,
        sensitive=(),
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a method process (before elaboration)."""
        self._check_not_elaborated("register_method")
        proc = MethodProcess(self, name, fn, dont_initialize)
        self.processes.append(proc)
        if sensitive:
            self._pending_sensitivity.append((proc, tuple(sensitive)))
        return proc

    def spawn(self, fn: Callable[[], Generator], name: str) -> ThreadProcess:
        """Dynamically spawn a thread process during simulation."""
        proc = ThreadProcess(self, name, fn)
        self.processes.append(proc)
        if not self.elaborated:
            return proc
        proc.state = ProcessState.READY
        self._runnable.append(proc)
        return proc

    def unregister_process(self, proc: Process) -> None:
        """Remove a registered process before elaboration.

        Used by the eSW synthesizer, which re-hosts a PE's behaviour
        functions as RTOS tasks and must stop the kernel from also
        running them natively.
        """
        self._check_not_elaborated("unregister_process")
        self.processes.remove(proc)
        self._pending_sensitivity = [
            (p, sources) for p, sources in self._pending_sensitivity
            if p is not proc
        ]

    def processes_of(self, obj) -> List[Process]:
        """Processes whose names live under ``obj``'s hierarchy."""
        prefix = f"{obj.full_name}."
        return [p for p in self.processes if p.name.startswith(prefix)]

    def _check_not_elaborated(self, what: str) -> None:
        if self.elaborated:
            raise ElaborationError(
                f"{what} is only legal before elaboration"
            )

    def _process_failed(self, process: Process, exc: BaseException) -> None:
        """A process raised: record the failure and stop the simulation."""
        if self._failure is None:
            self._failure = exc
        self._stop_requested = True

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------

    def add_elaboration_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at the end of elaboration."""
        self._elab_hooks.append(hook)

    def elaborate(self) -> None:
        """Finalize the design: bind ports, resolve sensitivity, init."""
        if self.elaborated:
            return
        # Give modules a chance to finish construction-time wiring.
        for obj in list(self.objects.values()):
            hook = getattr(obj, "before_end_of_elaboration", None)
            if hook is not None:
                hook()
        # Complete port binding (ports registered themselves at creation).
        for obj in list(self.objects.values()):
            binder = getattr(obj, "complete_binding", None)
            if binder is not None:
                binder()
        # Resolve static sensitivity now that ports are bound.
        for proc, sources in self._pending_sensitivity:
            for ev in sensitivity_events(sources):
                proc.add_static_sensitivity(ev)
        self._pending_sensitivity.clear()
        for obj in list(self.objects.values()):
            hook = getattr(obj, "end_of_elaboration", None)
            if hook is not None:
                hook()
        for hook in self._elab_hooks:
            hook()
        self.elaborated = True
        # Initialization phase: every process runs once unless it opted out.
        for proc in self.processes:
            if getattr(proc, "dont_initialize", False):
                proc._apply_wait(WaitCondition(WaitMode.STATIC))
            else:
                proc.state = ProcessState.READY
                self._runnable.append(proc)
        for obj in list(self.objects.values()):
            hook = getattr(obj, "start_of_simulation", None)
            if hook is not None:
                hook()

    # ------------------------------------------------------------------
    # scheduling services (used by Event, Process, channels)
    # ------------------------------------------------------------------

    def make_runnable(self, process: Process) -> None:
        """Queue a process for the current evaluation phase."""
        self._runnable.append(process)

    def schedule_delta_event(self, event: Event) -> None:
        """Queue an event for the next delta cycle."""
        self._delta_events.append(event)

    def schedule_timed_event(self, event: Event, when: SimTime) -> _TimedEntry:
        """Schedule an event notification at ``when``."""
        entry = _TimedEntry(when, next(self._seq), "event", event)
        heapq.heappush(self._timed_heap, entry)
        return entry

    def schedule_timed_resume(self, process: Process, when: SimTime) -> _TimedEntry:
        """Schedule a process timeout wake-up at ``when``."""
        entry = _TimedEntry(when, next(self._seq), "resume", process)
        heapq.heappush(self._timed_heap, entry)
        return entry

    def request_update(self, channel) -> None:
        """Queue ``channel._perform_update`` for the update phase."""
        if id(channel) not in self._update_set:
            self._update_set.add(id(channel))
            self._update_queue.append(channel)

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request the simulation to stop at the end of the current delta."""
        self._stop_requested = True

    def run(
        self,
        duration: Optional[SimTime] = None,
        until: Optional[SimTime] = None,
    ) -> SimTime:
        """Run the simulation.

        Parameters
        ----------
        duration:
            Run for this much simulated time from :attr:`now`.
        until:
            Run until this absolute simulated time.

        With neither given, runs until event starvation or :meth:`stop`.
        Returns the simulation time when the run ended.
        """
        if self._running:
            raise SimulationError(
                "run() called re-entrantly (e.g. from inside a process)"
            )
        if not self.elaborated:
            self.elaborate()
        if duration is not None and until is not None:
            raise SimulationError("pass either duration or until, not both")
        limit: Optional[SimTime] = None
        if duration is not None:
            limit = self._now + duration
        elif until is not None:
            if until < self._now:
                raise SimulationError(
                    f"cannot run until {until}: already at {self._now}"
                )
            limit = until

        self._stop_requested = False
        self._running = True
        try:
            self._event_loop(limit)
        finally:
            self._running = False
        if self._failure is not None:
            failure, self._failure = self._failure, None
            raise failure
        if limit is not None and self._now < limit and not self._stop_requested:
            # Starved before the limit: time still advances to the limit so
            # that consecutive run() calls compose predictably.
            self._now = limit
        return self._now

    def run_all(self, max_time: Optional[SimTime] = None) -> SimTime:
        """Run until starvation (optionally bounded by ``max_time``)."""
        return self.run(until=max_time) if max_time is not None else self.run()

    # ------------------------------------------------------------------
    # the scheduler proper
    # ------------------------------------------------------------------

    def _event_loop(self, limit: Optional[SimTime]) -> None:
        while True:
            # -- evaluation phase --------------------------------------
            ran_any = bool(self._runnable)
            if ran_any:
                self._last_activity = self._now
            while self._runnable:
                proc = self._runnable.popleft()
                self.current_process = proc
                proc._dispatch()
                self.current_process = None
                if self._stop_requested:
                    break
            if self._stop_requested:
                return

            # -- update phase ------------------------------------------
            if self._update_queue:
                updates = self._update_queue
                self._update_queue = []
                self._update_set.clear()
                for channel in updates:
                    channel._perform_update()

            # -- delta notification phase --------------------------------
            if self._delta_events:
                events = self._delta_events
                self._delta_events = []
                for ev in events:
                    ev._fire_scheduled("delta")

            if self._runnable:
                self._delta_count += 1
                self._deltas_this_timestep += 1
                if self._deltas_this_timestep > self.max_deltas_per_timestep:
                    raise SimulationError(
                        f"more than {self.max_deltas_per_timestep} delta "
                        f"cycles at time {self._now}; the model is probably "
                        f"in a zero-time activity loop"
                    )
                continue

            if ran_any and not self._timed_heap:
                # Give one more pass in case the update phase scheduled work.
                if self._runnable or self._delta_events or self._update_queue:
                    continue

            # -- timed notification phase --------------------------------
            entry = self._pop_live_timed()
            if entry is None:
                return  # starvation
            if limit is not None and entry.when > limit:
                # Put it back; it is beyond this run's horizon.
                heapq.heappush(self._timed_heap, entry)
                self._now = limit
                return
            self._advance_time(entry.when)
            self._fire_timed(entry)
            # Fire everything else scheduled at the same instant.
            while self._timed_heap and self._timed_heap[0].when == entry.when:
                nxt = self._pop_live_timed()
                if nxt is None:
                    break
                if nxt.when != entry.when:
                    heapq.heappush(self._timed_heap, nxt)
                    break
                self._fire_timed(nxt)
            self._delta_count += 1

    def _advance_time(self, when: SimTime) -> None:
        self._now = when
        self._deltas_this_timestep = 0

    def _pop_live_timed(self) -> Optional[_TimedEntry]:
        while self._timed_heap:
            entry = heapq.heappop(self._timed_heap)
            if not entry.cancelled:
                return entry
        return None

    def _fire_timed(self, entry: _TimedEntry) -> None:
        if entry.kind == "event":
            entry.payload._fire_scheduled("timed")
        else:  # "resume"
            entry.payload._timeout_fired()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    @property
    def pending_activity(self) -> bool:
        """True if any work (runnable, delta, or timed) remains."""
        return bool(
            self._runnable
            or self._delta_events
            or self._update_queue
            or any(not e.cancelled for e in self._timed_heap)
        )

    def time_of_next_activity(self) -> Optional[SimTime]:
        """Earliest pending timed notification, or None."""
        live = [e.when for e in self._timed_heap if not e.cancelled]
        return min(live) if live else None

    def __repr__(self) -> str:
        return (
            f"SimContext({self.name!r}, now={self._now}, "
            f"deltas={self._delta_count}, objects={len(self.objects)})"
        )
