"""Signals with SystemC evaluate/update semantics.

A :class:`Signal` is the primitive channel used for RTL-style (pin-level)
modeling: writes store a *next value* and take effect in the update phase,
so every process in a delta cycle observes the same stable current value.
This is what makes pin-accurate models (the OCP pin interface, the RTL
accessors) race-free.

:class:`SignalIn` / :class:`SignalOut` are the matching typed ports.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.port import Port

T = TypeVar("T")


class Signal(SimObject, Generic[T]):
    """A single-driver signal with delta-cycle update semantics.

    Parameters
    ----------
    init:
        Initial (and reset) value.
    check_writer:
        When True (default), writes from more than one process raise
        :class:`SimulationError`, catching classic multiple-driver bugs.
    """

    def __init__(self, name, parent=None, ctx=None, init: T = None,
                 check_writer: bool = True):
        super().__init__(name, parent, ctx)
        self._current: T = init
        self._next: T = init
        self._update_pending = False
        self._check_writer = check_writer
        self._writer = None
        self._value_changed = Event(self, f"{self.full_name}.value_changed")
        self._posedge = Event(self, f"{self.full_name}.posedge")
        self._negedge = Event(self, f"{self.full_name}.negedge")
        self._last_change_delta = -1
        #: observers called as fn(signal, old, new) on every value change;
        #: used by the VCD tracer without burdening the hot path when empty
        self._observers = []

    # -- access ---------------------------------------------------------------

    def read(self) -> T:
        """Current value (stable within a delta cycle)."""
        return self._current

    @property
    def value(self) -> T:
        """Current value (property form of ``read``)."""
        return self._current

    def write(self, value: T) -> None:
        """Schedule ``value`` to become current in the update phase."""
        if self._check_writer:
            writer = self.ctx.current_process
            if writer is not None:
                if self._writer is None:
                    self._writer = writer
                elif self._writer is not writer:
                    raise SimulationError(
                        f"signal {self.full_name} driven by both "
                        f"{self._writer.name!r} and {writer.name!r}"
                    )
        self._next = value
        if not self._update_pending:
            # The _update_pending flag already dedupes, so skip
            # request_update's id()-set and append to the queue directly.
            self._update_pending = True
            self.ctx._update_queue.append(self)

    def force(self, value: T) -> None:
        """Set the current value immediately, bypassing the update phase.

        Intended for initialization and test benches only.
        """
        self._current = value
        self._next = value

    def _perform_update(self) -> None:
        self._update_pending = False
        if self._next == self._current:
            return
        old, new = self._current, self._next
        self._current = new
        # Processes woken by this change run in the *next* delta cycle;
        # stamp that delta so ``event``/``posedge()`` read true for them
        # (matching sc_signal::event()).
        self._last_change_delta = self.ctx._delta_count + 1
        self._value_changed.notify_delta()
        # Edge events are meaningful for bool-like signals; defining them
        # through truthiness keeps int signals usable as wires too.
        if not old and new:
            self._posedge.notify_delta()
        elif old and not new:
            self._negedge.notify_delta()
        for observer in self._observers:
            observer(self, old, new)

    def on_change(self, observer) -> None:
        """Register ``observer(signal, old, new)`` for value changes."""
        self._observers.append(observer)

    # -- events -----------------------------------------------------------------

    def default_event(self) -> Event:
        """Sensitivity hook: value-changed."""
        return self._value_changed

    @property
    def value_changed_event(self) -> Event:
        """Fires one delta after any value change."""
        return self._value_changed

    @property
    def posedge_event(self) -> Event:
        """Fires on a falsy-to-truthy transition."""
        return self._posedge

    @property
    def negedge_event(self) -> Event:
        """Fires on a truthy-to-falsy transition."""
        return self._negedge

    @property
    def event(self) -> bool:
        """True if the value changed in the current delta cycle."""
        return self._last_change_delta == self.ctx._delta_count

    def posedge(self) -> bool:
        """True if this delta's change was a rising edge."""
        return self.event and bool(self._current)

    def negedge(self) -> bool:
        """True if this delta's change was a falling edge."""
        return self.event and not self._current

    # -- checkpoint/restore protocol (see repro.snapshot) ---------------------

    def __snapshot_events__(self):
        return (self._value_changed, self._posedge, self._negedge)

    def __snapshot__(self) -> dict:
        # Quiescent capture guarantees no pending update, so _next has
        # already been consumed (or equals the last settled write).
        return {
            "current": self._current,
            "next": self._next,
            "last_change_delta": self._last_change_delta,
            "writer": self._writer.name if self._writer is not None else None,
        }

    def __restore__(self, state: dict) -> None:
        self._current = state["current"]
        self._next = state["next"]
        self._last_change_delta = state["last_change_delta"]
        writer = state["writer"]
        if writer is not None:
            for proc in self.ctx.processes:
                if proc.name == writer:
                    self._writer = proc
                    break

    def __repr__(self) -> str:
        return f"Signal({self.full_name!r}, value={self._current!r})"


class SignalIn(Port):
    """Input port for signals: read-only access plus edge sensitivity."""

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=Signal,
                         required=required)

    def read(self):
        """Current value of the bound signal."""
        return self.channel.read()

    @property
    def value(self):
        """Current value of the bound signal."""
        return self.channel.read()

    def posedge(self) -> bool:
        """Rising-edge query on the bound signal."""
        return self.channel.posedge()

    def negedge(self) -> bool:
        """Falling-edge query on the bound signal."""
        return self.channel.negedge()

    @property
    def posedge_event(self) -> Event:
        """The bound signal's rising-edge event."""
        return self.channel.posedge_event

    @property
    def negedge_event(self) -> Event:
        """The bound signal's falling-edge event."""
        return self.channel.negedge_event


class SignalOut(Port):
    """Output port for signals: write access."""

    def __init__(self, name, parent=None, ctx=None, required: bool = True):
        super().__init__(name, parent, ctx, iface_type=Signal,
                         required=required)

    def write(self, value) -> None:
        """Schedule a new value on the bound signal."""
        self.channel.write(value)

    def read(self):
        """Outputs are readable too (``sc_inout`` behaviour)."""
        return self.channel.read()

    @property
    def value(self):
        """Current value (outputs are readable)."""
        return self.channel.read()


def signal_bus(name: str, parent, count: int, init=None) -> list:
    """Create a list of ``count`` signals named ``name[i]``."""
    return [
        Signal(f"{name}[{i}]", parent, init=init) for i in range(count)
    ]
