"""Simulation events with SystemC notification semantics.

An :class:`Event` is the kernel's only synchronization primitive; every
higher-level construct (signals, FIFOs, SHIP channels, bus handshakes)
reduces to events.  The notification rules follow IEEE 1666:

* ``notify()`` — *immediate*: waiting processes become runnable in the
  current evaluation phase.
* ``notify_delta()`` — *delta*: waiting processes become runnable in the
  next delta cycle.
* ``notify_after(t)`` — *timed*: the event triggers at ``now + t``.

An event carries at most one pending (delta or timed) notification.  A new
notification is discarded if it would trigger no earlier than the pending
one; an earlier notification overrides the pending one.  Immediate
notification always takes effect and cancels any pending notification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.kernel.simtime import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.context import SimContext
    from repro.kernel.process import Process


def _resolve_ctx(owner) -> "SimContext":
    """Accept either a SimContext or any object exposing ``.ctx``."""
    ctx = getattr(owner, "ctx", owner)
    if not hasattr(ctx, "schedule_delta_event"):
        raise TypeError(
            f"Event owner must be a SimContext or a simulation object, "
            f"got {type(owner).__name__}"
        )
    return ctx


class Event:
    """A notifiable simulation event.

    Parameters
    ----------
    owner:
        The :class:`~repro.kernel.context.SimContext` this event belongs
        to, or any simulation object exposing a ``ctx`` attribute.
    name:
        Optional diagnostic name (shown in traces and error messages).
    """

    __slots__ = (
        "ctx",
        "name",
        "_static_waiters",
        "_dynamic_waiters",
        "_pending_kind",
        "_pending_handle",
        "_trigger_count",
        "_last_trigger_delta",
    )

    def __init__(self, owner, name: str = ""):
        self.ctx = _resolve_ctx(owner)
        self.name = name or f"event_{id(self):x}"
        #: Processes statically sensitive to this event.
        self._static_waiters: List["Process"] = []
        #: Processes dynamically waiting on this event right now.
        self._dynamic_waiters: List["Process"] = []
        #: None | "delta" | "timed"
        self._pending_kind: Optional[str] = None
        #: For timed notifications: the scheduler handle (for cancel and
        #: for comparing trigger times).
        self._pending_handle = None
        self._trigger_count = 0
        self._last_trigger_delta = -1

    # -- notification API ------------------------------------------------

    def notify(self) -> None:
        """Immediate notification: trigger in the current evaluation phase."""
        self.cancel()
        self._trigger()

    def notify_delta(self) -> None:
        """Notify in the next delta cycle."""
        if self._pending_kind == "delta":
            return  # already pending as early as possible (short of immediate)
        if self._pending_kind == "timed":
            self._cancel_timed()
        self._pending_kind = "delta"
        self.ctx.schedule_delta_event(self)

    def notify_after(self, delay: SimTime) -> None:
        """Notify ``delay`` after the current simulation time.

        A zero delay is equivalent to :meth:`notify_delta`.
        """
        if delay == ZERO_TIME:
            self.notify_delta()
            return
        when = self.ctx.now + delay
        if self._pending_kind == "delta":
            return  # pending delta is earlier than any timed notification
        if self._pending_kind == "timed":
            if self._pending_handle.when <= when:
                return  # pending notification is no later; keep it
            self._cancel_timed()
        self._pending_kind = "timed"
        self._pending_handle = self.ctx.schedule_timed_event(self, when)

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        if self._pending_kind == "timed":
            self._cancel_timed()
        elif self._pending_kind == "delta":
            # The context will see _pending_kind reset and skip the trigger.
            self._pending_kind = None

    def _cancel_timed(self) -> None:
        self._pending_handle.cancelled = True
        self._pending_handle = None
        self._pending_kind = None

    # -- kernel-side hooks -------------------------------------------------

    def _fire_scheduled(self, kind: str) -> None:
        """Called by the scheduler when a pending notification matures."""
        if self._pending_kind != kind:
            return  # was cancelled or superseded
        self._pending_kind = None
        self._pending_handle = None
        self._trigger()

    def _trigger(self) -> None:
        """Wake every waiting process.  Runs inside the evaluation phase
        (immediate notify) or the notification phase (delta/timed)."""
        self._trigger_count += 1
        self._last_trigger_delta = self.ctx.delta_count
        if self._dynamic_waiters:
            waiters = self._dynamic_waiters
            self._dynamic_waiters = []
            for process in waiters:
                process._event_triggered(self)
        for process in self._static_waiters:
            process._static_triggered(self)

    # -- wait-list management (used by Process) ---------------------------

    def _add_dynamic(self, process: "Process") -> None:
        self._dynamic_waiters.append(process)

    def _remove_dynamic(self, process: "Process") -> None:
        try:
            self._dynamic_waiters.remove(process)
        except ValueError:
            pass

    def add_static(self, process: "Process") -> None:
        """Register a statically-sensitive process (elaboration time)."""
        if process not in self._static_waiters:
            self._static_waiters.append(process)

    # -- introspection ------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True if this event triggered in the current delta cycle."""
        return self._last_trigger_delta == self.ctx.delta_count

    @property
    def trigger_count(self) -> int:
        """Total number of times this event has triggered."""
        return self._trigger_count

    @property
    def has_pending_notification(self) -> bool:
        """True while a delta/timed notification is queued."""
        return self._pending_kind is not None

    def __repr__(self) -> str:
        return f"Event({self.name!r})"


class EventOrList:
    """An or-combination of events: triggers when *any* member triggers."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("EventOrList requires at least one event")
        self.events = tuple(events)

    def __or__(self, other: Event) -> "EventOrList":
        return EventOrList(*self.events, other)


class EventAndList:
    """An and-combination of events: triggers once *all* members have
    triggered (each at least once since the wait began)."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("EventAndList requires at least one event")
        self.events = tuple(events)

    def __and__(self, other: Event) -> "EventAndList":
        return EventAndList(*self.events, other)


def any_of(*events: Event) -> EventOrList:
    """Wait condition satisfied when any of ``events`` triggers."""
    return EventOrList(*events)


def all_of(*events: Event) -> EventAndList:
    """Wait condition satisfied when all of ``events`` have triggered."""
    return EventAndList(*events)
