"""Simulation events with SystemC notification semantics.

An :class:`Event` is the kernel's only synchronization primitive; every
higher-level construct (signals, FIFOs, SHIP channels, bus handshakes)
reduces to events.  The notification rules follow IEEE 1666:

* ``notify()`` — *immediate*: waiting processes become runnable in the
  current evaluation phase.
* ``notify_delta()`` — *delta*: waiting processes become runnable in the
  next delta cycle.
* ``notify_after(t)`` — *timed*: the event triggers at ``now + t``.

An event carries at most one pending (delta or timed) notification.  A new
notification is discarded if it would trigger no earlier than the pending
one; an earlier notification overrides the pending one.  Immediate
notification always takes effect and cancels any pending notification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.kernel.simtime import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.context import SimContext
    from repro.kernel.process import Process


# Timed-heap entry layout, shared by SimContext (which owns the heap),
# Event (timed notifications) and Process (timeouts).  An entry is a
# mutable 4-list ``[when_fs, seq, kind, payload]`` ordered by plain
# integer comparison: ``when_fs`` is absolute femtoseconds, ``seq`` is a
# unique tie-breaker, so comparisons never reach ``kind``/``payload``.
# Cancellation rewrites ``kind`` in place — no heap surgery needed.
ENTRY_WHEN_FS = 0
ENTRY_SEQ = 1
ENTRY_KIND = 2
ENTRY_PAYLOAD = 3

KIND_EVENT = 0
KIND_RESUME = 1
KIND_CANCELLED = 2


def _resolve_ctx(owner) -> "SimContext":
    """Accept either a SimContext or any object exposing ``.ctx``."""
    ctx = getattr(owner, "ctx", owner)
    if not hasattr(ctx, "schedule_delta_event"):
        raise TypeError(
            f"Event owner must be a SimContext or a simulation object, "
            f"got {type(owner).__name__}"
        )
    return ctx


class Event:
    """A notifiable simulation event.

    Parameters
    ----------
    owner:
        The :class:`~repro.kernel.context.SimContext` this event belongs
        to, or any simulation object exposing a ``ctx`` attribute.
    name:
        Optional diagnostic name (shown in traces and error messages).
    """

    __slots__ = (
        "ctx",
        "name",
        "_static_waiters",
        "_dynamic_waiters",
        "_pending_kind",
        "_pending_handle",
        "_trigger_count",
        "_last_trigger_delta",
        "_wait_cond",
    )

    def __init__(self, owner, name: str = ""):
        self.ctx = _resolve_ctx(owner)
        self.name = name or f"event_{id(self):x}"
        #: Processes statically sensitive to this event.
        self._static_waiters: List["Process"] = []
        #: Processes dynamically waiting on this event right now.
        self._dynamic_waiters: List["Process"] = []
        #: None | "delta" | "timed"
        self._pending_kind: Optional[str] = None
        #: For timed notifications: the scheduler handle (for cancel and
        #: for comparing trigger times).
        self._pending_handle = None
        self._trigger_count = 0
        self._last_trigger_delta = -1
        #: lazily-built WaitCondition for ``yield event`` (set by
        #: WaitCondition.normalize, cached here to avoid re-allocation)
        self._wait_cond = None

    # -- notification API ------------------------------------------------

    def notify(self) -> None:
        """Immediate notification: trigger in the current evaluation phase."""
        self.cancel()
        self._trigger()

    def notify_delta(self) -> None:
        """Notify in the next delta cycle."""
        if self._pending_kind == "delta":
            return  # already pending as early as possible (short of immediate)
        if self._pending_kind == "timed":
            self._cancel_timed()
        self._pending_kind = "delta"
        self.ctx._delta_events.append(self)

    def notify_after(self, delay: SimTime) -> None:
        """Notify ``delay`` after the current simulation time.

        A zero delay is equivalent to :meth:`notify_delta`.
        """
        if not isinstance(delay, SimTime):
            raise TypeError(
                f"notify_after requires a SimTime delay, got "
                f"{type(delay).__name__}"
            )
        delay_fs = delay._fs
        if delay_fs == 0:
            self.notify_delta()
            return
        self._notify_at_fs(self.ctx._now_fs + delay_fs)

    def _notify_at_fs(self, when_fs: int) -> None:
        """Timed notification at absolute integer time (kernel fast path).

        Skips all ``SimTime`` construction; the same override rule as
        :meth:`notify_after` applies (an earlier notification wins).
        """
        if self._pending_kind == "delta":
            return  # pending delta is earlier than any timed notification
        if self._pending_kind == "timed":
            if self._pending_handle[ENTRY_WHEN_FS] <= when_fs:
                return  # pending notification is no later; keep it
            self._pending_handle[ENTRY_KIND] = KIND_CANCELLED
        self._pending_kind = "timed"
        self._pending_handle = self.ctx._schedule_event_fs(self, when_fs)

    def cancel(self) -> None:
        """Cancel any pending delta or timed notification."""
        if self._pending_kind == "timed":
            self._cancel_timed()
        elif self._pending_kind == "delta":
            # The context will see _pending_kind reset and skip the trigger.
            self._pending_kind = None

    def _cancel_timed(self) -> None:
        self._pending_handle[ENTRY_KIND] = KIND_CANCELLED
        self._pending_handle = None
        self._pending_kind = None

    # -- kernel-side hooks -------------------------------------------------

    def _fire_scheduled(self, kind: str) -> None:
        """Called by the scheduler when a pending notification matures."""
        if self._pending_kind != kind:
            return  # was cancelled or superseded
        self._pending_kind = None
        self._pending_handle = None
        self._trigger()

    def _trigger(self) -> None:
        """Wake every waiting process.  Runs inside the evaluation phase
        (immediate notify) or the notification phase (delta/timed)."""
        self._trigger_count += 1
        self._last_trigger_delta = self.ctx._delta_count
        if self._dynamic_waiters:
            waiters = self._dynamic_waiters
            self._dynamic_waiters = []
            for process in waiters:
                process._event_triggered(self)
        for process in self._static_waiters:
            # Inlined Process._static_triggered: wake only the processes
            # actually suspended on their static sensitivity list.
            if process._waiting_static:
                process._wake(self)

    # -- wait-list management (used by Process) ---------------------------

    def _add_dynamic(self, process: "Process") -> None:
        self._dynamic_waiters.append(process)

    def _remove_dynamic(self, process: "Process") -> None:
        try:
            self._dynamic_waiters.remove(process)
        except ValueError:
            pass

    def add_static(self, process: "Process") -> None:
        """Register a statically-sensitive process (elaboration time)."""
        if process not in self._static_waiters:
            self._static_waiters.append(process)

    # -- introspection ------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True if this event triggered in the current delta cycle."""
        return self._last_trigger_delta == self.ctx._delta_count

    @property
    def trigger_count(self) -> int:
        """Total number of times this event has triggered."""
        return self._trigger_count

    @property
    def has_pending_notification(self) -> bool:
        """True while a delta/timed notification is queued."""
        return self._pending_kind is not None

    def __repr__(self) -> str:
        return f"Event({self.name!r})"


class EventOrList:
    """An or-combination of events: triggers when *any* member triggers."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("EventOrList requires at least one event")
        self.events = tuple(events)

    def __or__(self, other: Event) -> "EventOrList":
        return EventOrList(*self.events, other)


class EventAndList:
    """An and-combination of events: triggers once *all* members have
    triggered (each at least once since the wait began)."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("EventAndList requires at least one event")
        self.events = tuple(events)

    def __and__(self, other: Event) -> "EventAndList":
        return EventAndList(*self.events, other)


def any_of(*events: Event) -> EventOrList:
    """Wait condition satisfied when any of ``events`` triggers."""
    return EventOrList(*events)


def all_of(*events: Event) -> EventAndList:
    """Wait condition satisfied when all of ``events`` have triggered."""
    return EventAndList(*events)
