"""Severity-classified message reporting, modeled on ``sc_report``.

Models and kernel internals report through a :class:`Reporter` rather than
printing directly.  That keeps simulation output machine-checkable in
tests (a test can assert that a warning was or was not issued) and lets a
user silence or escalate message categories, exactly as SystemC's
``sc_report_handler`` does.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TextIO


class Severity(enum.IntEnum):
    """Message severity, ordered so comparisons are meaningful."""

    INFO = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3


@dataclass(frozen=True)
class Report:
    """A single reported message."""

    severity: Severity
    message_type: str
    message: str
    time_str: str
    object_name: Optional[str] = None

    def format(self) -> str:
        """One-line rendering with severity, type, time, origin."""
        where = f" [{self.object_name}]" if self.object_name else ""
        return (
            f"{self.severity.name} ({self.message_type}) "
            f"@ {self.time_str}{where}: {self.message}"
        )


class ReportedError(Exception):
    """Raised when a report at or above the abort threshold is issued."""

    def __init__(self, report: Report):
        super().__init__(report.format())
        self.report = report


@dataclass
class Reporter:
    """Collects reports, optionally echoing them to a stream.

    Parameters
    ----------
    echo_stream:
        Stream to echo formatted reports to; ``None`` silences echo.
        Defaults to ``sys.stderr`` for warnings and above only.
    abort_severity:
        Reports at or above this severity raise :class:`ReportedError`.
    """

    echo_stream: Optional[TextIO] = None
    echo_threshold: Severity = Severity.WARNING
    abort_severity: Severity = Severity.FATAL
    reports: List[Report] = field(default_factory=list)
    handlers: List[Callable[[Report], None]] = field(default_factory=list)

    def report(
        self,
        severity: Severity,
        message_type: str,
        message: str,
        time_str: str = "?",
        object_name: Optional[str] = None,
    ) -> Report:
        """Issue a report; returns the stored :class:`Report`."""
        rpt = Report(severity, message_type, message, time_str, object_name)
        self.reports.append(rpt)
        for handler in self.handlers:
            handler(rpt)
        stream = self.echo_stream
        if stream is None and severity >= self.echo_threshold:
            stream = sys.stderr
        if stream is not None and severity >= self.echo_threshold:
            print(rpt.format(), file=stream)
        if severity >= self.abort_severity:
            raise ReportedError(rpt)
        return rpt

    # Convenience wrappers -------------------------------------------------

    def info(self, message_type: str, message: str, **kw) -> Report:
        """Issue an INFO report."""
        return self.report(Severity.INFO, message_type, message, **kw)

    def warning(self, message_type: str, message: str, **kw) -> Report:
        """Issue a WARNING report."""
        return self.report(Severity.WARNING, message_type, message, **kw)

    def error(self, message_type: str, message: str, **kw) -> Report:
        """Issue an ERROR report."""
        return self.report(Severity.ERROR, message_type, message, **kw)

    def fatal(self, message_type: str, message: str, **kw) -> Report:
        """Issue a FATAL report (raises by default)."""
        return self.report(Severity.FATAL, message_type, message, **kw)

    # Query helpers --------------------------------------------------------

    def count(self, severity: Severity) -> int:
        """Number of reports issued at exactly ``severity``."""
        return sum(1 for r in self.reports if r.severity == severity)

    def messages_of_type(self, message_type: str) -> List[Report]:
        """All reports with the given message type."""
        return [r for r in self.reports if r.message_type == message_type]
