"""Simulation processes: thread processes and method processes.

The kernel supports the two SystemC process flavours:

* **Thread processes** (``SC_THREAD``) are Python *generator functions*.
  A thread suspends by yielding a wait condition and is resumed by the
  scheduler when the condition is satisfied.  Blocking interface methods
  (e.g. ``ShipChannel.recv``) are themselves generators and are invoked
  with ``yield from``.

  Valid yield values:

  ========================  =============================================
  yielded value             meaning
  ========================  =============================================
  ``Event``                 wait for that event
  ``EventOrList``           wait for any of the events
  ``EventAndList``          wait for all of the events
  ``SimTime``               wait for the given duration
  ``(SimTime, events...)``  wait for events with a timeout
  ``None``                  wait on the static sensitivity list
  ========================  =============================================

  The value sent back into the generator is the :class:`Event` that woke
  the process, or ``None`` for a timeout or static-sensitivity wake-up.

* **Method processes** (``SC_METHOD``) are plain callables invoked from
  start to finish on every trigger of their sensitivity.  They must not
  block; they may call :meth:`MethodProcess.next_trigger` to override
  their sensitivity for the next activation only.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional, Set, Tuple

from repro.kernel.errors import ProcessError
from repro.kernel.event import (
    ENTRY_KIND,
    Event,
    EventAndList,
    EventOrList,
    KIND_CANCELLED,
)
from repro.kernel.simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.context import SimContext


class ProcessState(enum.Enum):
    READY = "ready"          # queued for execution
    RUNNING = "running"      # currently executing
    WAITING = "waiting"      # suspended on a dynamic or static wait
    TERMINATED = "terminated"


class WaitMode(enum.Enum):
    ANY = "any"        # wake on any listed event (or timeout)
    ALL = "all"        # wake once all listed events have triggered
    TIMED = "timed"    # pure timeout
    STATIC = "static"  # wake on the static sensitivity list


# Hot-path bindings: enum member access goes through the metaclass on
# every lookup, so the scheduler-critical members are bound to module
# locals once.
_READY = ProcessState.READY
_RUNNING = ProcessState.RUNNING
_WAITING = ProcessState.WAITING
_MODE_STATIC = WaitMode.STATIC
_MODE_TIMED = WaitMode.TIMED
_MODE_ALL = WaitMode.ALL


class WaitCondition:
    """Normalized description of what a suspended process is waiting for."""

    __slots__ = ("mode", "events", "timeout")

    def __init__(
        self,
        mode: WaitMode,
        events: Tuple[Event, ...] = (),
        timeout: Optional[SimTime] = None,
    ):
        self.mode = mode
        self.events = events
        self.timeout = timeout

    @classmethod
    def normalize(cls, yielded) -> "WaitCondition":
        """Turn any legal yield value into a :class:`WaitCondition`.

        The three hottest yields — an :class:`Event`, a :class:`SimTime`
        and a pre-built :class:`WaitCondition` — resolve to cached,
        shared instances so steady-state simulation allocates nothing
        here.  Wait conditions are treated as immutable throughout the
        kernel, which is what makes the sharing safe.
        """
        if yielded is None:
            return _STATIC_WAIT
        if isinstance(yielded, Event):
            cond = yielded._wait_cond
            if cond is None:
                cond = cls(WaitMode.ANY, (yielded,))
                yielded._wait_cond = cond
            return cond
        if isinstance(yielded, SimTime):
            cond = _TIMED_WAIT_CACHE.get(yielded)
            if cond is None:
                cond = cls(WaitMode.TIMED, timeout=yielded)
                if len(_TIMED_WAIT_CACHE) < _TIMED_WAIT_CACHE_CAP:
                    _TIMED_WAIT_CACHE[yielded] = cond
            return cond
        if isinstance(yielded, WaitCondition):
            return yielded
        if isinstance(yielded, EventOrList):
            return cls(WaitMode.ANY, yielded.events)
        if isinstance(yielded, EventAndList):
            return cls(WaitMode.ALL, yielded.events)
        converter = getattr(yielded, "as_wait_condition", None)
        if converter is not None:
            # Duck-typed hook: annotation objects (e.g. the eSW
            # ``ExecuteFor`` marker) define their plain-kernel meaning.
            return cls.normalize(converter())
        if isinstance(yielded, tuple) and yielded and isinstance(yielded[0], SimTime):
            events: list = []
            for item in yielded[1:]:
                if isinstance(item, Event):
                    events.append(item)
                elif isinstance(item, EventOrList):
                    events.extend(item.events)
                else:
                    raise ProcessError(
                        f"invalid member in timed wait tuple: {item!r}"
                    )
            if not events:
                return cls(WaitMode.TIMED, timeout=yielded[0])
            return cls(WaitMode.ANY, tuple(events), timeout=yielded[0])
        raise ProcessError(
            f"process yielded an invalid wait condition: {yielded!r}"
        )


#: Shared instances returned by :meth:`WaitCondition.normalize` for the
#: hot yields; see its docstring for the immutability contract.
_STATIC_WAIT = WaitCondition(WaitMode.STATIC)
_TIMED_WAIT_CACHE: dict = {}
_TIMED_WAIT_CACHE_CAP = 4096


def wait(*args) -> WaitCondition:
    """Build a wait condition explicitly: ``yield wait(ev)``,
    ``yield wait(ns(5))``, ``yield wait(ns(5), done_event)``,
    ``yield wait()`` (static sensitivity)."""
    if not args:
        return WaitCondition(WaitMode.STATIC)
    if len(args) == 1:
        return WaitCondition.normalize(args[0])
    if isinstance(args[0], SimTime):
        return WaitCondition.normalize(tuple(args))
    events: list = []
    for item in args:
        if isinstance(item, Event):
            events.append(item)
        elif isinstance(item, EventOrList):
            events.extend(item.events)
        else:
            raise ProcessError(f"invalid wait argument: {item!r}")
    return WaitCondition(WaitMode.ANY, tuple(events))


class Process:
    """Base class for both process flavours."""

    __slots__ = (
        "ctx",
        "name",
        "state",
        "static_sensitivity",
        "terminated_event",
        "_wake_value",
        "_timeout_handle",
        "_waiting_static",
        "_pending_all",
        "_wait_events",
        "exception",
    )

    kind = "process"

    def __init__(self, ctx: "SimContext", name: str):
        self.ctx = ctx
        self.name = name
        self.state = ProcessState.READY
        #: Events this process is statically sensitive to.
        self.static_sensitivity: list = []
        #: Notified (delta) when the process terminates.
        self.terminated_event = Event(ctx, f"{name}.terminated")
        self._wake_value: Optional[Event] = None
        self._timeout_handle = None
        self._waiting_static = False
        self._pending_all: Set[Event] = set()
        self._wait_events: Tuple[Event, ...] = ()
        self.exception: Optional[BaseException] = None

    # -- sensitivity -------------------------------------------------------

    def add_static_sensitivity(self, event: Event) -> None:
        """Add an event to the static sensitivity list."""
        if event not in self.static_sensitivity:
            self.static_sensitivity.append(event)
            event.add_static(self)

    # -- wake-up plumbing ---------------------------------------------------

    def _clear_dynamic_wait(self) -> None:
        if self._wait_events:
            for ev in self._wait_events:
                ev._remove_dynamic(self)
            self._wait_events = ()
        if self._pending_all:
            self._pending_all.clear()
        self._waiting_static = False
        if self._timeout_handle is not None:
            self._timeout_handle[ENTRY_KIND] = KIND_CANCELLED
            self._timeout_handle = None

    def _wake(self, wake_value: Optional[Event]) -> None:
        if self.state is not _WAITING:
            return
        # Inlined _clear_dynamic_wait, with one extra trick: the event
        # that woke us (``wake_value``) already swapped its waiter list
        # out wholesale in Event._trigger, so removing ourselves from it
        # would only raise-and-swallow a ValueError — skip it.
        wait_events = self._wait_events
        if wait_events:
            for ev in wait_events:
                if ev is not wake_value:
                    ev._remove_dynamic(self)
            self._wait_events = ()
        if self._pending_all:
            self._pending_all.clear()
        self._waiting_static = False
        handle = self._timeout_handle
        if handle is not None:
            handle[ENTRY_KIND] = KIND_CANCELLED
            self._timeout_handle = None
        self._wake_value = wake_value
        self.state = _READY
        self.ctx._runnable.append(self)

    def _event_triggered(self, event: Event) -> None:
        """Called by an event this process dynamically waits on."""
        if self._pending_all:
            self._pending_all.discard(event)
            if self._pending_all:
                return  # still waiting for the rest of the and-list
        self._wake(event)

    def _static_triggered(self, event: Event) -> None:
        """Called by an event on the static sensitivity list."""
        if self._waiting_static:
            self._wake(event)

    def _timeout_fired(self) -> None:
        self._wake(None)

    # -- scheduler interface -------------------------------------------------

    def _dispatch(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _apply_wait(self, cond: WaitCondition) -> None:
        """Suspend this process on ``cond``."""
        self.state = _WAITING
        mode = cond.mode
        if mode is _MODE_STATIC:
            if not self.static_sensitivity:
                # A static wait with no sensitivity suspends forever; this
                # is legal in SystemC but almost always a bug in a model.
                self.ctx.reporter.warning(
                    "process",
                    f"process {self.name!r} waits on an empty static "
                    f"sensitivity list and will never resume",
                    time_str=str(self.ctx.now),
                )
            self._waiting_static = True
            return
        ctx = self.ctx
        if mode is _MODE_TIMED:
            self._timeout_handle = ctx._schedule_resume_fs(
                self, ctx._now_fs + cond.timeout._fs
            )
            return
        # ANY / ALL over events, possibly with a timeout.
        events = cond.events
        self._wait_events = events
        for ev in events:
            ev._dynamic_waiters.append(self)
        if mode is _MODE_ALL:
            self._pending_all = set(events)
        if cond.timeout is not None:
            self._timeout_handle = ctx._schedule_resume_fs(
                self, ctx._now_fs + cond.timeout._fs
            )

    def _terminate(self) -> None:
        self._clear_dynamic_wait()
        self.state = ProcessState.TERMINATED
        self.terminated_event.notify_delta()

    @property
    def terminated(self) -> bool:
        """True once the process ran to completion."""
        return self.state is ProcessState.TERMINATED

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class ThreadProcess(Process):
    """A coroutine process driven by a generator function."""

    __slots__ = ("_fn", "_gen", "dont_initialize")

    kind = "thread"

    def __init__(
        self,
        ctx: "SimContext",
        name: str,
        fn: Callable[[], Generator],
        dont_initialize: bool = False,
    ):
        super().__init__(ctx, name)
        self._fn = fn
        self._gen: Optional[Generator] = None
        self.dont_initialize = dont_initialize

    def _start(self) -> None:
        """Create the underlying generator (first dispatch)."""
        result = self._fn()
        if result is None:
            # A plain function (no yields): it already ran to completion.
            self._terminate()
            return
        if not hasattr(result, "send"):
            raise ProcessError(
                f"thread process {self.name!r} must be a generator "
                f"function, got {type(result).__name__}"
            )
        self._gen = result
        self._advance(first=True)

    def _dispatch(self) -> None:
        # The steady-state resume path is fully inlined here: one
        # generator send, one normalize, one apply_wait.
        gen = self._gen
        if gen is None:
            self.state = _RUNNING
            self._start()
            return
        self.state = _RUNNING
        wake = self._wake_value
        self._wake_value = None
        try:
            yielded = gen.send(wake)
        except StopIteration:
            self._terminate()
            return
        except BaseException as exc:
            self.exception = exc
            self._terminate()
            self.ctx._process_failed(self, exc)
            return
        self._apply_wait(WaitCondition.normalize(yielded))

    def _advance(self, first: bool = False) -> None:
        self.state = ProcessState.RUNNING
        wake = self._wake_value
        self._wake_value = None
        try:
            if first:
                yielded = next(self._gen)
            else:
                yielded = self._gen.send(wake)
        except StopIteration:
            self._terminate()
            return
        except BaseException as exc:
            self.exception = exc
            self._terminate()
            self.ctx._process_failed(self, exc)
            return
        self._apply_wait(WaitCondition.normalize(yielded))


class MethodProcess(Process):
    """A run-to-completion callback process."""

    __slots__ = ("_fn", "dont_initialize", "_next_trigger_override")

    kind = "method"

    def __init__(
        self,
        ctx: "SimContext",
        name: str,
        fn: Callable[[], None],
        dont_initialize: bool = False,
    ):
        super().__init__(ctx, name)
        self._fn = fn
        self.dont_initialize = dont_initialize
        self._next_trigger_override: Optional[WaitCondition] = None

    def next_trigger(self, *args) -> None:
        """Override the sensitivity for the next activation only.

        With no arguments, restores the static sensitivity.
        """
        if not args:
            self._next_trigger_override = WaitCondition(WaitMode.STATIC)
        else:
            self._next_trigger_override = wait(*args)

    def _dispatch(self) -> None:
        self.state = _RUNNING
        self._wake_value = None
        self._next_trigger_override = None
        try:
            result = self._fn()
        except BaseException as exc:
            self.exception = exc
            self._terminate()
            self.ctx._process_failed(self, exc)
            return
        if result is not None and hasattr(result, "send"):
            raise ProcessError(
                f"method process {self.name!r} is a generator function; "
                f"register it as a thread process instead"
            )
        cond = self._next_trigger_override or _STATIC_WAIT
        self._apply_wait(cond)


class LazySensitivity:
    """A sensitivity source resolved at elaboration time.

    Wraps a zero-argument callable returning an iterable of sensitivity
    sources (events, signals, bound ports).  Used by the module process
    decorators, whose string attribute names cannot be resolved until the
    module instance is fully constructed and its ports are bound.
    """

    __slots__ = ("resolver",)

    def __init__(self, resolver: Callable[[], Iterable]):
        self.resolver = resolver


def sensitivity_events(sources: Iterable) -> list:
    """Expand a sensitivity specification into a list of events.

    Each source may be an :class:`Event`, a :class:`LazySensitivity`, or
    any object exposing a ``default_event()`` method (signals, ports bound
    to signals, ...).
    """
    events = []
    for src in sources:
        if isinstance(src, Event):
            events.append(src)
        elif isinstance(src, LazySensitivity):
            events.extend(sensitivity_events(src.resolver()))
        elif hasattr(src, "default_event"):
            events.append(src.default_event())
        else:
            raise ProcessError(
                f"cannot be used in a sensitivity list: {src!r}"
            )
    return events
