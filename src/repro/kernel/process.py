"""Simulation processes: thread processes and method processes.

The kernel supports the two SystemC process flavours:

* **Thread processes** (``SC_THREAD``) are Python *generator functions*.
  A thread suspends by yielding a wait condition and is resumed by the
  scheduler when the condition is satisfied.  Blocking interface methods
  (e.g. ``ShipChannel.recv``) are themselves generators and are invoked
  with ``yield from``.

  Valid yield values:

  ========================  =============================================
  yielded value             meaning
  ========================  =============================================
  ``Event``                 wait for that event
  ``EventOrList``           wait for any of the events
  ``EventAndList``          wait for all of the events
  ``SimTime``               wait for the given duration
  ``(SimTime, events...)``  wait for events with a timeout
  ``None``                  wait on the static sensitivity list
  ========================  =============================================

  The value sent back into the generator is the :class:`Event` that woke
  the process, or ``None`` for a timeout or static-sensitivity wake-up.

* **Method processes** (``SC_METHOD``) are plain callables invoked from
  start to finish on every trigger of their sensitivity.  They must not
  block; they may call :meth:`MethodProcess.next_trigger` to override
  their sensitivity for the next activation only.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional, Set, Tuple

from repro.kernel.errors import ProcessError
from repro.kernel.event import Event, EventAndList, EventOrList
from repro.kernel.simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.context import SimContext


class ProcessState(enum.Enum):
    READY = "ready"          # queued for execution
    RUNNING = "running"      # currently executing
    WAITING = "waiting"      # suspended on a dynamic or static wait
    TERMINATED = "terminated"


class WaitMode(enum.Enum):
    ANY = "any"        # wake on any listed event (or timeout)
    ALL = "all"        # wake once all listed events have triggered
    TIMED = "timed"    # pure timeout
    STATIC = "static"  # wake on the static sensitivity list


class WaitCondition:
    """Normalized description of what a suspended process is waiting for."""

    __slots__ = ("mode", "events", "timeout")

    def __init__(
        self,
        mode: WaitMode,
        events: Tuple[Event, ...] = (),
        timeout: Optional[SimTime] = None,
    ):
        self.mode = mode
        self.events = events
        self.timeout = timeout

    @classmethod
    def normalize(cls, yielded) -> "WaitCondition":
        """Turn any legal yield value into a :class:`WaitCondition`."""
        if yielded is None:
            return cls(WaitMode.STATIC)
        if isinstance(yielded, Event):
            return cls(WaitMode.ANY, (yielded,))
        if isinstance(yielded, EventOrList):
            return cls(WaitMode.ANY, yielded.events)
        if isinstance(yielded, EventAndList):
            return cls(WaitMode.ALL, yielded.events)
        if isinstance(yielded, SimTime):
            return cls(WaitMode.TIMED, timeout=yielded)
        if isinstance(yielded, WaitCondition):
            return yielded
        converter = getattr(yielded, "as_wait_condition", None)
        if converter is not None:
            # Duck-typed hook: annotation objects (e.g. the eSW
            # ``ExecuteFor`` marker) define their plain-kernel meaning.
            return cls.normalize(converter())
        if isinstance(yielded, tuple) and yielded and isinstance(yielded[0], SimTime):
            events: list = []
            for item in yielded[1:]:
                if isinstance(item, Event):
                    events.append(item)
                elif isinstance(item, EventOrList):
                    events.extend(item.events)
                else:
                    raise ProcessError(
                        f"invalid member in timed wait tuple: {item!r}"
                    )
            if not events:
                return cls(WaitMode.TIMED, timeout=yielded[0])
            return cls(WaitMode.ANY, tuple(events), timeout=yielded[0])
        raise ProcessError(
            f"process yielded an invalid wait condition: {yielded!r}"
        )


def wait(*args) -> WaitCondition:
    """Build a wait condition explicitly: ``yield wait(ev)``,
    ``yield wait(ns(5))``, ``yield wait(ns(5), done_event)``,
    ``yield wait()`` (static sensitivity)."""
    if not args:
        return WaitCondition(WaitMode.STATIC)
    if len(args) == 1:
        return WaitCondition.normalize(args[0])
    if isinstance(args[0], SimTime):
        return WaitCondition.normalize(tuple(args))
    events: list = []
    for item in args:
        if isinstance(item, Event):
            events.append(item)
        elif isinstance(item, EventOrList):
            events.extend(item.events)
        else:
            raise ProcessError(f"invalid wait argument: {item!r}")
    return WaitCondition(WaitMode.ANY, tuple(events))


class Process:
    """Base class for both process flavours."""

    kind = "process"

    def __init__(self, ctx: "SimContext", name: str):
        self.ctx = ctx
        self.name = name
        self.state = ProcessState.READY
        #: Events this process is statically sensitive to.
        self.static_sensitivity: list = []
        #: Notified (delta) when the process terminates.
        self.terminated_event = Event(ctx, f"{name}.terminated")
        self._wake_value: Optional[Event] = None
        self._timeout_handle = None
        self._waiting_static = False
        self._pending_all: Set[Event] = set()
        self._wait_events: Tuple[Event, ...] = ()
        self.exception: Optional[BaseException] = None

    # -- sensitivity -------------------------------------------------------

    def add_static_sensitivity(self, event: Event) -> None:
        """Add an event to the static sensitivity list."""
        if event not in self.static_sensitivity:
            self.static_sensitivity.append(event)
            event.add_static(self)

    # -- wake-up plumbing ---------------------------------------------------

    def _clear_dynamic_wait(self) -> None:
        for ev in self._wait_events:
            ev._remove_dynamic(self)
        self._wait_events = ()
        self._pending_all.clear()
        self._waiting_static = False
        if self._timeout_handle is not None:
            self._timeout_handle.cancelled = True
            self._timeout_handle = None

    def _wake(self, wake_value: Optional[Event]) -> None:
        if self.state is not ProcessState.WAITING:
            return
        self._clear_dynamic_wait()
        self._wake_value = wake_value
        self.state = ProcessState.READY
        self.ctx.make_runnable(self)

    def _event_triggered(self, event: Event) -> None:
        """Called by an event this process dynamically waits on."""
        if self._pending_all:
            self._pending_all.discard(event)
            if self._pending_all:
                return  # still waiting for the rest of the and-list
        self._wake(event)

    def _static_triggered(self, event: Event) -> None:
        """Called by an event on the static sensitivity list."""
        if self._waiting_static:
            self._wake(event)

    def _timeout_fired(self) -> None:
        self._wake(None)

    # -- scheduler interface -------------------------------------------------

    def _dispatch(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _apply_wait(self, cond: WaitCondition) -> None:
        """Suspend this process on ``cond``."""
        self.state = ProcessState.WAITING
        if cond.mode is WaitMode.STATIC:
            if not self.static_sensitivity:
                # A static wait with no sensitivity suspends forever; this
                # is legal in SystemC but almost always a bug in a model.
                self.ctx.reporter.warning(
                    "process",
                    f"process {self.name!r} waits on an empty static "
                    f"sensitivity list and will never resume",
                    time_str=str(self.ctx.now),
                )
            self._waiting_static = True
            return
        if cond.mode is WaitMode.TIMED:
            self._timeout_handle = self.ctx.schedule_timed_resume(
                self, self.ctx.now + cond.timeout
            )
            return
        # ANY / ALL over events, possibly with a timeout.
        self._wait_events = cond.events
        for ev in cond.events:
            ev._add_dynamic(self)
        if cond.mode is WaitMode.ALL:
            self._pending_all = set(cond.events)
        if cond.timeout is not None:
            self._timeout_handle = self.ctx.schedule_timed_resume(
                self, self.ctx.now + cond.timeout
            )

    def _terminate(self) -> None:
        self._clear_dynamic_wait()
        self.state = ProcessState.TERMINATED
        self.terminated_event.notify_delta()

    @property
    def terminated(self) -> bool:
        """True once the process ran to completion."""
        return self.state is ProcessState.TERMINATED

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class ThreadProcess(Process):
    """A coroutine process driven by a generator function."""

    kind = "thread"

    def __init__(
        self,
        ctx: "SimContext",
        name: str,
        fn: Callable[[], Generator],
        dont_initialize: bool = False,
    ):
        super().__init__(ctx, name)
        self._fn = fn
        self._gen: Optional[Generator] = None
        self.dont_initialize = dont_initialize

    def _start(self) -> None:
        """Create the underlying generator (first dispatch)."""
        result = self._fn()
        if result is None:
            # A plain function (no yields): it already ran to completion.
            self._terminate()
            return
        if not hasattr(result, "send"):
            raise ProcessError(
                f"thread process {self.name!r} must be a generator "
                f"function, got {type(result).__name__}"
            )
        self._gen = result
        self._advance(first=True)

    def _dispatch(self) -> None:
        self.state = ProcessState.RUNNING
        if self._gen is None:
            self._start()
        else:
            self._advance()

    def _advance(self, first: bool = False) -> None:
        self.state = ProcessState.RUNNING
        wake = self._wake_value
        self._wake_value = None
        try:
            if first:
                yielded = next(self._gen)
            else:
                yielded = self._gen.send(wake)
        except StopIteration:
            self._terminate()
            return
        except BaseException as exc:
            self.exception = exc
            self._terminate()
            self.ctx._process_failed(self, exc)
            return
        self._apply_wait(WaitCondition.normalize(yielded))


class MethodProcess(Process):
    """A run-to-completion callback process."""

    kind = "method"

    def __init__(
        self,
        ctx: "SimContext",
        name: str,
        fn: Callable[[], None],
        dont_initialize: bool = False,
    ):
        super().__init__(ctx, name)
        self._fn = fn
        self.dont_initialize = dont_initialize
        self._next_trigger_override: Optional[WaitCondition] = None

    def next_trigger(self, *args) -> None:
        """Override the sensitivity for the next activation only.

        With no arguments, restores the static sensitivity.
        """
        if not args:
            self._next_trigger_override = WaitCondition(WaitMode.STATIC)
        else:
            self._next_trigger_override = wait(*args)

    def _dispatch(self) -> None:
        self.state = ProcessState.RUNNING
        self._wake_value = None
        self._next_trigger_override = None
        try:
            result = self._fn()
        except BaseException as exc:
            self.exception = exc
            self._terminate()
            self.ctx._process_failed(self, exc)
            return
        if result is not None and hasattr(result, "send"):
            raise ProcessError(
                f"method process {self.name!r} is a generator function; "
                f"register it as a thread process instead"
            )
        cond = self._next_trigger_override or WaitCondition(WaitMode.STATIC)
        self._apply_wait(cond)


class LazySensitivity:
    """A sensitivity source resolved at elaboration time.

    Wraps a zero-argument callable returning an iterable of sensitivity
    sources (events, signals, bound ports).  Used by the module process
    decorators, whose string attribute names cannot be resolved until the
    module instance is fully constructed and its ports are bound.
    """

    __slots__ = ("resolver",)

    def __init__(self, resolver: Callable[[], Iterable]):
        self.resolver = resolver


def sensitivity_events(sources: Iterable) -> list:
    """Expand a sensitivity specification into a list of events.

    Each source may be an :class:`Event`, a :class:`LazySensitivity`, or
    any object exposing a ``default_event()`` method (signals, ports bound
    to signals, ...).
    """
    events = []
    for src in sources:
        if isinstance(src, Event):
            events.append(src)
        elif isinstance(src, LazySensitivity):
            events.extend(sensitivity_events(src.resolver()))
        elif hasattr(src, "default_event"):
            events.append(src.default_event())
        else:
            raise ProcessError(
                f"cannot be used in a sensitivity list: {src!r}"
            )
    return events
