"""Synchronization primitives: mutex and semaphore (``sc_mutex`` /
``sc_semaphore`` equivalents).

Blocking operations are generator methods invoked with ``yield from``
inside thread processes.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject


class Mutex(SimObject):
    """A non-recursive mutex owned by the locking process."""

    def __init__(self, name, parent=None, ctx=None):
        super().__init__(name, parent, ctx)
        self._owner = None
        self._released = Event(self, f"{self.full_name}.released")

    def lock(self) -> Generator:
        """Blocking lock (``yield from mutex.lock()``)."""
        while not self.try_lock():
            yield self._released

    def try_lock(self) -> bool:
        """Non-blocking lock attempt."""
        if self._owner is not None:
            return False
        self._owner = self.ctx.current_process
        return True

    def unlock(self) -> None:
        """Release; only the owning process may unlock."""
        current = self.ctx.current_process
        if self._owner is None:
            raise SimulationError(f"mutex {self.full_name}: not locked")
        if current is not None and current is not self._owner:
            raise SimulationError(
                f"mutex {self.full_name}: unlock by non-owner "
                f"{current.name!r}"
            )
        self._owner = None
        self._released.notify()

    @property
    def locked(self) -> bool:
        """True while some process owns the mutex."""
        return self._owner is not None


class Semaphore(SimObject):
    """A counting semaphore."""

    def __init__(self, name, parent=None, ctx=None, initial: int = 1):
        super().__init__(name, parent, ctx)
        if initial < 0:
            raise SimulationError(
                f"semaphore {name!r}: initial count must be >= 0"
            )
        self._count = initial
        self._posted = Event(self, f"{self.full_name}.posted")

    def wait(self) -> Generator:
        """Blocking decrement (``yield from sem.wait()``)."""
        while not self.try_wait():
            yield self._posted

    def try_wait(self) -> bool:
        """Non-blocking decrement attempt."""
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def post(self) -> None:
        """Increment and wake one class of waiters."""
        self._count += 1
        self._posted.notify()

    @property
    def count(self) -> int:
        """Current semaphore value."""
        return self._count
