"""Synchronization primitives: mutex, semaphore, and timeout helpers.

:class:`Mutex` and :class:`Semaphore` mirror ``sc_mutex`` /
``sc_semaphore``.  Blocking operations are generator methods invoked
with ``yield from`` inside thread processes.

The timeout helpers are the kernel's resilience primitives:

* :func:`wait_with_timeout` — wait for an event with a deadline and
  learn whether the deadline expired;
* :func:`with_timeout` — impose an overall deadline on *any* blocking
  generator call (a bus ``transport``, a FIFO read, a nested protocol
  sequence) without the callee cooperating.
"""

from __future__ import annotations

from typing import Generator

from repro.kernel.errors import ProcessError, SimTimeoutError, SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.process import WaitCondition, WaitMode
from repro.kernel.simtime import SimTime


def wait_with_timeout(event, timeout: SimTime) -> Generator:
    """Wait for ``event`` (an Event or or-list), at most ``timeout``.

    Returns True when the wait **timed out** and False when the event
    fired first::

        timed_out = yield from wait_with_timeout(fifo.data_written_event,
                                                 ns(500))
        if timed_out:
            ...

    A timeout of zero (or negative remaining budget) still suspends the
    process until the scheduled deadline in the current instant, keeping
    wake-up ordering deterministic.
    """
    wake = yield (timeout, event)
    return wake is None


def with_timeout(ctx, gen: Generator, timeout: SimTime,
                 what: str = "operation") -> Generator:
    """Drive blocking generator ``gen`` under an overall deadline.

    Works with any blocking interface method (``socket.transport(...)``,
    ``fifo.read()``, a whole protocol exchange): each wait the callee
    yields is capped at the remaining budget, so the caller resumes no
    later than ``now + timeout``::

        response = yield from with_timeout(
            self.ctx, socket.transport(request), us(5), what="bus read")

    Returns the callee's return value; raises
    :class:`~repro.kernel.errors.SimTimeoutError` if the deadline passes
    while the callee is still blocked (the callee generator is closed).
    Waits the callee completes exactly at the deadline count as success.
    Static-sensitivity waits cannot be capped and raise
    :class:`~repro.kernel.errors.ProcessError`.
    """
    deadline_fs = ctx._now_fs + timeout._fs
    send_value = None
    first = True
    while True:
        try:
            yielded = next(gen) if first else gen.send(send_value)
            first = False
        except StopIteration as stop:
            return stop.value
        cond = WaitCondition.normalize(yielded)
        if cond.mode is WaitMode.STATIC:
            gen.close()
            raise ProcessError(
                f"with_timeout({what}): cannot impose a deadline on a "
                f"static-sensitivity wait"
            )
        remaining_fs = deadline_fs - ctx._now_fs
        if remaining_fs <= 0:
            gen.close()
            raise SimTimeoutError(
                f"{what} timed out after {timeout} (at {ctx.now})"
            )
        own = cond.timeout
        if own is not None and own._fs <= remaining_fs:
            # The callee's own deadline expires first: pass the wait
            # through untouched; a None wake-up is the callee's timeout.
            send_value = yield cond
            continue
        capped = SimTime._from_fs(remaining_fs)
        send_value = yield WaitCondition(cond.mode, cond.events,
                                         timeout=capped)
        if send_value is None:
            # Our injected deadline fired (the callee either had no
            # timeout or a later one, so this None can only be ours).
            gen.close()
            raise SimTimeoutError(
                f"{what} timed out after {timeout} (at {ctx.now})"
            )


class Mutex(SimObject):
    """A non-recursive mutex owned by the locking process."""

    def __init__(self, name, parent=None, ctx=None):
        super().__init__(name, parent, ctx)
        self._owner = None
        self._released = Event(self, f"{self.full_name}.released")

    def lock(self) -> Generator:
        """Blocking lock (``yield from mutex.lock()``)."""
        while not self.try_lock():
            yield self._released

    def try_lock(self) -> bool:
        """Non-blocking lock attempt."""
        if self._owner is not None:
            return False
        self._owner = self.ctx.current_process
        return True

    def unlock(self) -> None:
        """Release; only the owning process may unlock."""
        current = self.ctx.current_process
        if self._owner is None:
            raise SimulationError(f"mutex {self.full_name}: not locked")
        if current is not None and current is not self._owner:
            raise SimulationError(
                f"mutex {self.full_name}: unlock by non-owner "
                f"{current.name!r}"
            )
        self._owner = None
        self._released.notify()

    @property
    def locked(self) -> bool:
        """True while some process owns the mutex."""
        return self._owner is not None


class Semaphore(SimObject):
    """A counting semaphore."""

    def __init__(self, name, parent=None, ctx=None, initial: int = 1):
        super().__init__(name, parent, ctx)
        if initial < 0:
            raise SimulationError(
                f"semaphore {name!r}: initial count must be >= 0"
            )
        self._count = initial
        self._posted = Event(self, f"{self.full_name}.posted")

    def wait(self) -> Generator:
        """Blocking decrement (``yield from sem.wait()``)."""
        while not self.try_wait():
            yield self._posted

    def try_wait(self) -> bool:
        """Non-blocking decrement attempt."""
        if self._count <= 0:
            return False
        self._count -= 1
        return True

    def post(self) -> None:
        """Increment and wake one class of waiters."""
        self._count += 1
        self._posted.notify()

    @property
    def count(self) -> int:
        """Current semaphore value."""
        return self._count
