"""Clock: a self-toggling boolean signal, mirroring ``sc_clock``."""

from __future__ import annotations


from repro.kernel.errors import SimulationError
from repro.kernel.process import WaitCondition, WaitMode
from repro.kernel.signal import Signal
from repro.kernel.simtime import SimTime, ZERO_TIME


class Clock(Signal):
    """A periodic boolean signal.

    Parameters
    ----------
    period:
        Clock period (must be positive).
    duty_cycle:
        Fraction of the period the clock is high, ``0 < duty < 1``.
    start_time:
        Absolute time of the first edge.
    posedge_first:
        If True (default) the first edge is a rising edge.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        period: SimTime = None,
        duty_cycle: float = 0.5,
        start_time: SimTime = ZERO_TIME,
        posedge_first: bool = True,
    ):
        super().__init__(name, parent, ctx, init=not posedge_first,
                         check_writer=False)
        if period is None or period == ZERO_TIME:
            raise SimulationError(f"clock {name!r} needs a positive period")
        if not 0.0 < duty_cycle < 1.0:
            raise SimulationError(
                f"clock {name!r}: duty_cycle must be in (0, 1), "
                f"got {duty_cycle}"
            )
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_time = start_time
        self.posedge_first = posedge_first
        high_fs = round(period.femtoseconds * duty_cycle)
        self._high_time = SimTime._from_fs(high_fs)
        self._low_time = SimTime._from_fs(period.femtoseconds - high_fs)
        # Pre-built wait conditions: the toggle loop re-yields these two
        # objects forever instead of normalizing a fresh WaitCondition
        # per half-period (they are immutable once built).
        self._high_wait = WaitCondition(WaitMode.TIMED, timeout=self._high_time)
        self._low_wait = WaitCondition(WaitMode.TIMED, timeout=self._low_time)
        self.ctx.register_thread(self._toggle, f"{self.full_name}._toggle")

    def _toggle(self):
        if self.start_time > ZERO_TIME:
            yield self.start_time
        # The first edge moves the clock away from its init value.
        write = self.write
        high_wait, low_wait = self._high_wait, self._low_wait
        if self.posedge_first:
            while True:
                write(True)
                yield high_wait
                write(False)
                yield low_wait
        else:
            while True:
                write(False)
                yield low_wait
                write(True)
                yield high_wait

    def __restore_thread__(self, proc_name: str):
        """Replacement toggle body for snapshot restore.

        ``_toggle`` writes the signal *before* each in-loop yield, so
        re-priming the original body against restored state would re-do
        a write that already happened.  The replacement's first yield is
        a pure shape placeholder (its duration is discarded in favour of
        the captured timer); on wake, toggling resumes from the restored
        current value — which also lands in the correct half-period for
        asymmetric duty cycles, since the wait after each write is
        chosen by the value just written.
        """
        if proc_name != f"{self.full_name}._toggle":
            return None
        return self._toggle_resumed

    def _toggle_resumed(self):
        yield self._high_wait  # placeholder; timing adopted from snapshot
        write = self.write
        high_wait, low_wait = self._high_wait, self._low_wait
        while True:
            value = not self._current
            write(value)
            yield (high_wait if value else low_wait)

    def cycles(self, count: int) -> SimTime:
        """Duration of ``count`` clock periods."""
        return self.period * count

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz."""
        return 1.0 / self.period.to("sec")
