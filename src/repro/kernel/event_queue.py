"""Event queue: multiple pending notifications (``sc_event_queue``).

A plain :class:`~repro.kernel.event.Event` holds at most one pending
notification — a second notify that would land later is discarded.
Models that must deliver *every* notification (timers firing bursts,
bus monitors batching) use an :class:`EventQueue`: each ``notify``
is queued and delivered in its own delta cycle, none are lost.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List

from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime, ZERO_TIME


class EventQueue(SimObject):
    """Delivers one trigger of :attr:`event` per queued notification.

    Notifications at the same timestamp are delivered in consecutive
    delta cycles so even a single waiting process observes each one.
    """

    def __init__(self, name, parent=None, ctx=None):
        super().__init__(name, parent, ctx)
        #: The event processes wait on / are sensitive to.
        self.event = Event(self, f"{self.full_name}.event")
        #: Internal relay scheduled for the earliest queued notification;
        #: the Event override rule (earlier wins) does the re-arming.
        self._relay = Event(self, f"{self.full_name}.relay")
        self._pump = _QueuePump(self)
        self._pump_waiting = False
        self._pending: List = []
        self._seq = itertools.count()
        self.delivered = 0

    def default_event(self) -> Event:
        """Sensitivity hook: the delivery event."""
        return self.event

    def notify(self, delay: SimTime = ZERO_TIME) -> None:
        """Queue a notification ``delay`` from now (0 = next delta)."""
        heapq.heappush(
            self._pending, (self.ctx._now_fs + delay._fs, next(self._seq))
        )
        self._arm()

    def cancel_all(self) -> None:
        """Drop every queued notification."""
        self._pending.clear()
        self._relay.cancel()
        if self._pump_waiting:
            self._relay._remove_dynamic(self._pump)
            self._pump_waiting = False

    @property
    def pending_count(self) -> int:
        """Notifications queued and not yet delivered."""
        return len(self._pending)

    # -- delivery machinery ----------------------------------------------------

    def _arm(self) -> None:
        if not self._pending:
            return
        if not self._pump_waiting:
            self._relay._add_dynamic(self._pump)
            self._pump_waiting = True
        when_fs = self._pending[0][0]
        if when_fs <= self.ctx._now_fs:
            self._relay.notify_delta()
        else:
            # An already-pending later notification is overridden; an
            # already-pending earlier one makes this a no-op.  The
            # integer-time path skips SimTime construction entirely.
            self._relay._notify_at_fs(when_fs)

    def _pump_fired(self) -> None:
        self._pump_waiting = False
        if not self._pending:
            return
        heapq.heappop(self._pending)
        self.delivered += 1
        self.event.notify_delta()
        self._arm()


class _QueuePump:
    """Relay waiter with the minimal process-like wake interface."""

    __slots__ = ("queue",)

    def __init__(self, queue: EventQueue):
        self.queue = queue

    def _event_triggered(self, event: Event) -> None:
        self.queue._pump_fired()
