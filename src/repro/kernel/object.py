"""Named, hierarchical simulation objects.

Every structural element of a model — modules, ports, channels, clocks —
is a :class:`SimObject`: it has a local name, a parent (or is a top-level
object), and a hierarchical *full name* such as ``top.dma.m_port`` that
uniquely identifies it within its :class:`~repro.kernel.context.SimContext`.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, List, Optional

from repro.kernel.errors import ElaborationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.context import SimContext

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\[\]]*$")


class SimObject:
    """Base class for all named simulation objects.

    Parameters
    ----------
    name:
        Local (leaf) name.  Must look like an identifier; ``[i]`` suffixes
        are allowed so arrays of objects read naturally (``port[3]``).
    parent:
        The enclosing :class:`SimObject` (usually a module), or ``None``
        for a top-level object — in which case ``ctx`` is required.
    ctx:
        The simulation context; inferred from ``parent`` when omitted.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["SimObject"] = None,
        ctx: Optional["SimContext"] = None,
    ):
        if not _NAME_RE.match(name):
            raise ElaborationError(f"invalid simulation object name: {name!r}")
        if parent is not None:
            resolved_ctx = parent.ctx
            if ctx is not None and ctx is not resolved_ctx:
                raise ElaborationError(
                    f"object {name!r}: explicit ctx differs from parent's ctx"
                )
        else:
            if ctx is None:
                raise ElaborationError(
                    f"top-level object {name!r} needs an explicit ctx"
                )
            resolved_ctx = ctx

        self.name = name
        self.parent = parent
        self.ctx = resolved_ctx
        self.children: List["SimObject"] = []
        if parent is not None:
            self.full_name = f"{parent.full_name}.{name}"
        else:
            self.full_name = name
        self.ctx.register_object(self, parent)
        if parent is not None:
            parent.children.append(self)

    # -- hierarchy helpers --------------------------------------------------

    def iter_descendants(self):
        """Yield all descendants, depth-first."""
        for child in self.children:
            yield child
            yield from child.iter_descendants()

    def find_child(self, local_name: str) -> Optional["SimObject"]:
        """Direct child by local name, or None."""
        for child in self.children:
            if child.name == local_name:
                return child
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name!r})"
