"""``repro.kernel`` — a SystemC-like discrete-event simulation kernel.

The kernel reimplements, in Python, the subset of IEEE 1666 SystemC that
the paper's TLM methodology rests on: delta-cycle scheduling, events with
immediate/delta/timed notification, thread and method processes, modules
with hierarchical naming, ports/exports with elaboration-time binding
checks, signals with evaluate/update semantics, bounded FIFOs, clocks,
and synchronization primitives.

Quick start::

    from repro.kernel import SimContext, Module, Fifo, FifoIn, FifoOut, ns

    class Producer(Module):
        def __init__(self, name, parent=None, ctx=None):
            super().__init__(name, parent, ctx)
            self.out = FifoOut("out", self)
            self.add_thread(self.run)

        def run(self):
            for i in range(4):
                yield ns(10)
                yield from self.out.write(i)

    ctx = SimContext()
    top = Module("top", ctx=ctx)
    fifo = Fifo("fifo", top, capacity=2)
    prod = Producer("prod", top)
    prod.out.bind(fifo)
    ctx.run()
"""

from repro.kernel.clock import Clock
from repro.kernel.context import SimContext, active_context
from repro.kernel.errors import (
    BindingError,
    ElaborationError,
    KernelError,
    ProcessError,
    SimTimeoutError,
    SimulationError,
    TimeError,
    WatchdogError,
)
from repro.kernel.event import Event, all_of, any_of
from repro.kernel.event_queue import EventQueue
from repro.kernel.fifo import Fifo, FifoIn, FifoOut
from repro.kernel.module import Module, method_process, thread_process
from repro.kernel.object import SimObject
from repro.kernel.port import Export, Port
from repro.kernel.process import (
    MethodProcess,
    Process,
    ProcessState,
    ThreadProcess,
    wait,
)
from repro.kernel.report import Report, ReportedError, Reporter, Severity
from repro.kernel.signal import Signal, SignalIn, SignalOut, signal_bus
from repro.kernel.simtime import (
    ZERO_TIME,
    SimTime,
    fs,
    ms,
    ns,
    ps,
    sec,
    us,
)
from repro.kernel.sync import (
    Mutex,
    Semaphore,
    wait_with_timeout,
    with_timeout,
)
from repro.kernel.watchdog import SimWatchdog

__all__ = [
    "BindingError",
    "Clock",
    "ElaborationError",
    "Event",
    "EventQueue",
    "Export",
    "Fifo",
    "FifoIn",
    "FifoOut",
    "KernelError",
    "MethodProcess",
    "Module",
    "Mutex",
    "Port",
    "Process",
    "ProcessError",
    "ProcessState",
    "Report",
    "ReportedError",
    "Reporter",
    "Semaphore",
    "Severity",
    "SignalIn",
    "SignalOut",
    "Signal",
    "SimContext",
    "SimObject",
    "SimTime",
    "SimTimeoutError",
    "SimWatchdog",
    "SimulationError",
    "ThreadProcess",
    "TimeError",
    "WatchdogError",
    "ZERO_TIME",
    "active_context",
    "all_of",
    "any_of",
    "fs",
    "method_process",
    "ms",
    "ns",
    "ps",
    "sec",
    "signal_bus",
    "thread_process",
    "us",
    "wait",
    "wait_with_timeout",
    "with_timeout",
]
