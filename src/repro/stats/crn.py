"""Common-random-numbers paired comparison of two design points.

Ranking two configs by independently-seeded runs wastes most of the
replication budget on noise both configs share (the workload's random
addresses, gaps, and payloads).  Common random numbers removes that
shared noise: replicate ``r`` of config A and replicate ``r`` of
config B derive their seeds from the *same* base
(:func:`repro.stats.seeds.crn_pair_base`), so both simulate identical
traffic and the per-replicate differences ``A_r - B_r`` cancel the
workload variance.  The CI of the mean difference is then computed
from those paired differences — typically several times tighter than
the independent-seeds interval at the same replicate count, which is
exactly what the estimator self-tests and the benchmark's
``crn_variance_ratio`` record measure.

The substream discipline matters: replicate points run with
``rng_streams=True``, so a config that consumes fewer draws of one
kind (say, clamped bursts drawing fewer payload words) does not
desynchronize every later address and gap draw — without per-stream
RNGs, "common" random numbers silently stop being common.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.stats.estimate import (
    DEFAULT_CONFIDENCE,
    MetricEstimate,
    estimate_from_samples,
)
from repro.stats.replicate import ReplicatedRunner, ReplicationPolicy
from repro.stats.seeds import crn_pair_base
from repro.sweep.engine import OBJECTIVES, SweepEngine
from repro.sweep.points import SweepPoint


@dataclass
class PairedComparison:
    """The outcome of one A-vs-B comparison.

    ``difference`` is the t-based estimate of ``mean(A) - mean(B)``
    computed over the per-replicate differences; with ``crn=True``
    those replicates shared traffic, without it they were independent.
    """

    point_a: SweepPoint
    point_b: SweepPoint
    objective: str
    estimate_a: MetricEstimate
    estimate_b: MetricEstimate
    difference: MetricEstimate
    crn: bool

    @property
    def significant(self) -> bool:
        """True when the difference CI excludes zero."""
        return not self.difference.covers(0.0)

    @property
    def better(self) -> Optional[str]:
        """Name of the significantly better config, or None.

        "Better" follows the objective's direction (lower latency
        wins, higher throughput wins); an interval straddling zero
        means the comparison is not yet resolved at this confidence.
        """
        if not self.significant:
            return None
        _, higher_better = OBJECTIVES[self.objective]
        a_wins = (self.difference.mean > 0.0) == higher_better
        winner = self.point_a if a_wins else self.point_b
        return winner.config.name

    def row(self) -> dict:
        """Deterministic report row (simulation-derived fields only)."""
        return {
            "config_a": self.point_a.config.name,
            "config_b": self.point_b.config.name,
            "objective": self.objective,
            "crn": self.crn,
            "mean_a": self.estimate_a.mean,
            "mean_b": self.estimate_b.mean,
            "difference": self.difference.mean,
            "difference_half_width": self.difference.half_width,
            "difference_stddev": self.difference.stddev,
            "replicates": self.difference.n,
            "significant": self.significant,
            "better": self.better,
        }


def paired_compare(
    engine: SweepEngine,
    point_a: SweepPoint,
    point_b: SweepPoint,
    objective: str = "mean_latency_ns",
    replicates: int = 8,
    confidence: float = DEFAULT_CONFIDENCE,
    crn: bool = True,
    metrics=None,
) -> PairedComparison:
    """Compare two design points replicate-by-replicate.

    Runs ``replicates`` replicates of each point through ``engine``
    (both points' replicates batch into the same pool dispatches) and
    reports the CI of the per-replicate difference.  ``crn=True``
    derives both sides' replicate seeds from the shared
    :func:`~repro.stats.seeds.crn_pair_base`, so replicate ``r`` of A
    and of B drive identical traffic; ``crn=False`` keeps the seeds
    independent — run both ways on the same pair to measure the
    variance reduction CRN buys.
    """
    if replicates < 2:
        raise ValueError(
            f"paired comparison needs >= 2 replicates, got {replicates}"
        )
    runner = ReplicatedRunner(
        engine,
        policy=ReplicationPolicy(r_min=replicates, r_max=replicates,
                                 confidence=confidence),
        metrics=metrics,
    )
    bases = None
    if crn:
        shared = crn_pair_base(point_a.key(), point_b.key())
        bases = [shared, shared]
    outcome_a, outcome_b = runner.run(
        [point_a, point_b], objective=objective, bases=bases,
    )
    values_a = outcome_a.values()
    values_b = outcome_b.values()
    differences = [a - b for a, b in zip(values_a, values_b)]
    method = "paired-crn" if crn else "paired-independent"
    difference = estimate_from_samples(
        differences, confidence=confidence, method=method,
        diagnostics={"replicates": len(differences)},
    )
    if metrics is not None:
        metrics.estimate(f"stats.difference.{objective}").record(
            difference)
    return PairedComparison(
        point_a=point_a, point_b=point_b, objective=objective,
        estimate_a=outcome_a.estimate, estimate_b=outcome_b.estimate,
        difference=difference, crn=crn,
    )
