"""Confidence-interval estimates without numpy/scipy.

The evaluation engine's currency is the :class:`MetricEstimate`: a mean
plus a two-sided t-based confidence half-width and the diagnostics that
say how the interval was formed (sample count, batching, transient
truncation).  Everything here is pure standard-library python — the
Student-t quantile is computed from the regularized incomplete beta
function (continued fraction, Numerical-Recipes style) inverted by
bisection, and the estimator self-tests validate it against published
table values and seeded closed-form streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.trace.stats import OnlineStats

#: Default two-sided confidence level used across the package.
DEFAULT_CONFIDENCE = 0.95

#: Continued-fraction iteration cap for the incomplete beta function.
_BETACF_MAX_ITER = 200
#: Convergence tolerance of the continued fraction.
_BETACF_EPS = 3.0e-12


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function.

    The classic Lentz evaluation (Numerical Recipes ``betacf``),
    convergent for ``x < (a + 1) / (a + b + 2)`` — the caller applies
    the symmetry transform for the other half of the domain.
    """
    tiny = 1.0e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            return h
    return h


def incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, df: int) -> float:
    """Student-t cumulative distribution function with ``df`` degrees."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_quantile(p: float, df: int) -> float:
    """Inverse Student-t CDF (one-sided quantile) by bisection.

    ``t_quantile(0.975, 9)`` is the familiar 2.262 multiplier of a
    95% two-sided CI over 10 samples.  Bisection over the monotone CDF
    trades a few dozen cheap evaluations for guaranteed convergence —
    no series expansion edge cases to defend.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {p}")
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if p == 0.5:
        return 0.0
    # Symmetric distribution: solve in the upper half and mirror.
    if p < 0.5:
        return -t_quantile(1.0 - p, df)
    lo, hi = 0.0, 2.0
    while t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclass
class MetricEstimate:
    """A mean with a two-sided confidence interval and its provenance.

    ``n`` counts the observations the interval is computed over —
    replicates for a replicated-run estimate, batches for a
    batch-means estimate.  ``diagnostics`` carries method-specific
    extras (transient samples truncated, batch size, lag-1
    autocorrelation of the batch means) without widening the core
    schema.
    """

    mean: float
    half_width: float
    confidence: float = DEFAULT_CONFIDENCE
    n: int = 0
    stddev: float = 0.0
    method: str = "t"
    diagnostics: Dict[str, object] = field(default_factory=dict)

    @property
    def lower(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of |mean| (inf for a zero mean)."""
        if self.mean == 0.0:
            return math.inf if self.half_width > 0.0 else 0.0
        return self.half_width / abs(self.mean)

    def covers(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def meets(self, ci_target: float) -> bool:
        """True when the relative half-width is within ``ci_target``."""
        return self.relative_half_width <= ci_target

    def to_dict(self) -> dict:
        """Canonical JSON-able dict of the estimate."""
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "n": self.n,
            "stddev": self.stddev,
            "method": self.method,
            "diagnostics": dict(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricEstimate":
        """Rebuild an estimate from :meth:`to_dict` output."""
        return cls(
            mean=data["mean"],
            half_width=data["half_width"],
            confidence=data["confidence"],
            n=data["n"],
            stddev=data["stddev"],
            method=data["method"],
            diagnostics=dict(data.get("diagnostics", {})),
        )

    def __repr__(self) -> str:
        return (
            f"MetricEstimate({self.mean:.4g} ± {self.half_width:.4g} "
            f"@ {self.confidence:.0%}, n={self.n}, {self.method})"
        )


def estimate_from_samples(
    samples: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "t",
    diagnostics: Optional[dict] = None,
) -> MetricEstimate:
    """t-based :class:`MetricEstimate` over independent observations.

    One sample yields a degenerate estimate with an infinite
    half-width — honest "no interval yet", which sequential stopping
    rules treat as "keep replicating".
    """
    if not samples:
        raise ValueError("cannot estimate from zero samples")
    stats = OnlineStats()
    for value in samples:
        stats.add(value)
    return estimate_from_stats(stats, confidence=confidence,
                               method=method, diagnostics=diagnostics)


def estimate_from_stats(
    stats: OnlineStats,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "t",
    diagnostics: Optional[dict] = None,
) -> MetricEstimate:
    """t-based :class:`MetricEstimate` from accumulated moments.

    Works on any :class:`~repro.trace.stats.OnlineStats` — including
    one produced by :meth:`~repro.trace.stats.OnlineStats.merge`, whose
    moments are exact, so per-worker partial statistics pool into the
    same interval a single accumulator would have produced.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}")
    if stats.count == 0:
        raise ValueError("cannot estimate from zero samples")
    if stats.count < 2:
        half = math.inf
    else:
        half = t_quantile(0.5 + confidence / 2.0,
                          stats.count - 1) * stats.sem
    return MetricEstimate(
        mean=stats.mean,
        half_width=half,
        confidence=confidence,
        n=stats.count,
        stddev=stats.sample_stddev,
        method=method,
        diagnostics=dict(diagnostics or {}),
    )
