"""Steady-state estimation: transient removal and batch means.

A simulation that starts from an empty fabric spends its first
transactions in a warm-up transient (cold arbiters, empty queues); the
textbook treatment — Welch's graphical procedure made automatic — is to
truncate the initialization bias and then batch the remaining
autocorrelated series so the batch means are approximately independent
before forming a t interval.  This module implements exactly that
pipeline over the per-master latency series the exploration runner
exports with ``record_series=True``:

* :func:`welch_moving_average` — the smoothed series Welch's procedure
  plots; exposed as a diagnostic.
* :func:`mser_truncation` — the Marginal Standard Error Rule (MSER-k):
  pick the truncation point that minimizes the standard error of the
  remaining mean, the standard automated stand-in for eyeballing the
  Welch plot.
* :func:`batch_means` / :func:`lag1_autocorrelation` — fixed-count
  batching with the independence diagnostic that says whether the
  batches were long enough.
* :func:`steady_state_estimate` — the composition, returning a
  :class:`~repro.stats.estimate.MetricEstimate` whose diagnostics
  record what was dropped and how it was batched.

Everything is deterministic, allocation-light, pure python.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.stats.estimate import (
    DEFAULT_CONFIDENCE,
    MetricEstimate,
    estimate_from_samples,
)

#: Default batch count for batch-means estimation.  20-30 batches is
#: the classic guidance: enough t degrees of freedom, batches long
#: enough to damp autocorrelation.
DEFAULT_BATCHES = 20

#: MSER spacing: truncation candidates are multiples of this many
#: samples (MSER-5 in the literature).
MSER_SPACING = 5


def welch_moving_average(series: Sequence[float],
                         window: int = 5) -> List[float]:
    """Centered moving average — the curve Welch's procedure inspects.

    ``window`` is the half-width; endpoints use the symmetric shrunken
    window Welch prescribes, so the output has the same length as the
    input and no edge bias from zero padding.
    """
    if window < 0:
        raise ValueError("window must be >= 0")
    n = len(series)
    out = []
    for i in range(n):
        w = min(window, i, n - 1 - i)
        lo, hi = i - w, i + w + 1
        out.append(sum(series[lo:hi]) / (hi - lo))
    return out


def mser_truncation(series: Sequence[float],
                    spacing: int = MSER_SPACING) -> int:
    """Samples to drop from the front, by the MSER-k rule.

    Evaluates truncation points ``d = 0, spacing, 2*spacing, ...`` up
    to half the series and returns the ``d`` minimizing
    ``var(series[d:]) / (n - d)`` — the marginal standard error of the
    truncated mean.  A series too short to split (fewer than
    ``2 * spacing`` samples) is returned untruncated.  Never drops the
    second half: a minimum at the far end signals the run is all
    transient, and keeping data beats keeping nothing.
    """
    if spacing < 1:
        raise ValueError("spacing must be >= 1")
    n = len(series)
    if n < 2 * spacing:
        return 0
    best_d, best_score = 0, math.inf
    for d in range(0, n // 2 + 1, spacing):
        tail = series[d:]
        m = len(tail)
        if m < 2:
            break
        mean = sum(tail) / m
        var = sum((x - mean) ** 2 for x in tail) / m
        score = var / m
        if score < best_score:
            best_score, best_d = score, d
    return best_d


def batch_means(series: Sequence[float],
                batches: int = DEFAULT_BATCHES) -> List[float]:
    """Split ``series`` into ``batches`` contiguous batches of means.

    The batch count is reduced (never below 2) when the series is too
    short for the requested count at two samples per batch; leftover
    samples that do not fill a whole batch are folded into the last
    one, so no observation is silently discarded.
    """
    if batches < 2:
        raise ValueError("batch means needs at least 2 batches")
    n = len(series)
    if n < 4:
        raise ValueError(
            f"series of {n} samples is too short to batch")
    batches = min(batches, n // 2)
    size = n // batches
    means = []
    for b in range(batches):
        lo = b * size
        hi = n if b == batches - 1 else lo + size
        chunk = series[lo:hi]
        means.append(sum(chunk) / len(chunk))
    return means


def lag1_autocorrelation(values: Sequence[float]) -> float:
    """Lag-1 autocorrelation — the batch-independence diagnostic.

    Near zero means the batches are long enough that their means are
    effectively independent and the t interval is trustworthy; large
    positive values say the interval is optimistic and the batches (or
    the run) should grow.  Degenerate inputs (constant or too short)
    return 0.0.
    """
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    denom = sum((x - mean) ** 2 for x in values)
    if denom == 0.0:
        return 0.0
    num = sum(
        (values[i] - mean) * (values[i + 1] - mean)
        for i in range(n - 1)
    )
    return num / denom


def steady_state_estimate(
    series: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    batches: int = DEFAULT_BATCHES,
    truncate: bool = True,
    spacing: int = MSER_SPACING,
) -> MetricEstimate:
    """Transient-removed, batch-means CI over one metric series.

    The pipeline: MSER truncation drops the initialization bias (skip
    with ``truncate=False``), :func:`batch_means` turns the remaining
    autocorrelated samples into approximately independent batch means,
    and a t interval over those means becomes the returned
    :class:`~repro.stats.estimate.MetricEstimate`.  Diagnostics carry
    ``truncated`` (samples dropped), ``batches``/``batch_size``, and
    ``lag1_autocorr`` of the batch means.

    Series too short to batch (under 4 retained samples) degrade to a
    plain per-sample t estimate flagged ``method="t-samples"`` rather
    than raising — screening sweeps with tiny workloads still get an
    honest (wide) interval.
    """
    if not series:
        raise ValueError("cannot estimate from an empty series")
    dropped = mser_truncation(series, spacing=spacing) if truncate else 0
    tail = list(series[dropped:])
    if len(tail) < 4:
        est = estimate_from_samples(tail, confidence=confidence,
                                    method="t-samples")
        est.diagnostics.update({"truncated": dropped,
                                "batches": len(tail),
                                "batch_size": 1,
                                "lag1_autocorr": 0.0})
        return est
    means = batch_means(tail, batches=batches)
    est = estimate_from_samples(means, confidence=confidence,
                                method="batch-means")
    est.diagnostics.update({
        "truncated": dropped,
        "batches": len(means),
        "batch_size": len(tail) // len(means),
        "lag1_autocorr": lag1_autocorrelation(means),
    })
    return est


def master_latency_estimate(
    result,
    master: Optional[str] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    batches: int = DEFAULT_BATCHES,
) -> MetricEstimate:
    """Steady-state latency estimate from an exploration result.

    ``result`` is an :class:`~repro.explore.ExplorationResult` produced
    with ``record_series=True``; ``master`` selects one traffic master
    by name, while the default pools every master's series (in master
    order) into one estimate of the fabric-wide latency.  Raises when
    the result carries no series.
    """
    masters = (result.masters if master is None
               else [m for m in result.masters if m.name == master])
    if not masters:
        raise ValueError(f"no master named {master!r} in result")
    series: List[float] = []
    for m in masters:
        if m.latency_series is None:
            raise ValueError(
                f"master {m.name!r} has no latency series; run the "
                f"point with record_series=True"
            )
        series.extend(m.latency_series)
    return steady_state_estimate(series, confidence=confidence,
                                 batches=batches)
