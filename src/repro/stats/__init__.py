"""``repro.stats`` — statistically rigorous evaluation of sweep results.

The paper's methodology chooses architectures by comparing simulated
metrics; this package supplies the statistics that make such
comparisons defensible instead of anecdotal:

* :mod:`repro.stats.estimate` — :class:`MetricEstimate` (mean ± t-based
  confidence half-width) and the pure-python Student-t machinery behind
  it (regularized incomplete beta, ``t_cdf``, ``t_quantile``).
* :mod:`repro.stats.steady` — steady-state estimation over per-master
  latency series: MSER transient truncation (automated Welch
  procedure), batch means, lag-1 independence diagnostic.
* :mod:`repro.stats.seeds` — content-key-derived replicate seeds and
  the per-``(master, stream)`` substream discipline; the golden-pinned
  derivation contracts.
* :mod:`repro.stats.replicate` — :class:`ReplicatedRunner`: R
  independent replicates per design point through the warm
  :class:`~repro.sweep.SweepEngine` pool, pooled into CIs, with the
  sequential stopping rule "replicate until the CI half-width is
  within ``ci_target`` of the mean, capped at ``r_max``".
* :mod:`repro.stats.crn` — common-random-numbers paired comparison of
  two design points (:func:`paired_compare`), reporting the CI of the
  difference with measurable variance reduction over independent
  seeding.

See ``docs/evaluation.md`` for the methodology walkthrough and
``examples/rigorous_exploration.py`` for an end-to-end run.
"""

from repro.stats.crn import PairedComparison, paired_compare
from repro.stats.estimate import (
    DEFAULT_CONFIDENCE,
    MetricEstimate,
    estimate_from_samples,
    estimate_from_stats,
    incomplete_beta,
    t_cdf,
    t_quantile,
)
from repro.stats.replicate import (
    ReplicatedOutcome,
    ReplicatedRunner,
    ReplicationPolicy,
    ranked_replicated,
)
from repro.stats.seeds import (
    SUBSTREAMS,
    crn_pair_base,
    replicate_seed,
    substream_seed,
)
from repro.stats.steady import (
    batch_means,
    lag1_autocorrelation,
    master_latency_estimate,
    mser_truncation,
    steady_state_estimate,
    welch_moving_average,
)

__all__ = [
    "DEFAULT_CONFIDENCE",
    "MetricEstimate",
    "PairedComparison",
    "ReplicatedOutcome",
    "ReplicatedRunner",
    "ReplicationPolicy",
    "SUBSTREAMS",
    "batch_means",
    "crn_pair_base",
    "estimate_from_samples",
    "estimate_from_stats",
    "incomplete_beta",
    "lag1_autocorrelation",
    "master_latency_estimate",
    "mser_truncation",
    "paired_compare",
    "ranked_replicated",
    "replicate_seed",
    "steady_state_estimate",
    "substream_seed",
    "t_cdf",
    "t_quantile",
    "welch_moving_average",
]
