"""Replicated runs with sequential stopping over the warm sweep pool.

A single simulation of a design point yields one number per objective —
a point estimate with no error bar, which makes close rankings noise.
:class:`ReplicatedRunner` fixes that: it derives R independent
replicate seeds from the point's content key
(:func:`repro.stats.seeds.replicate_seed`), runs the replicates through
an existing :class:`~repro.sweep.engine.SweepEngine` — so they shard
across the persistent warm worker pool and cache individually for free
— and pools the per-replicate objective values into a t-based
:class:`~repro.stats.estimate.MetricEstimate`.

:class:`ReplicationPolicy` adds the sequential stopping rule of the
form "replicate until the 95% CI half-width is within 2% of the mean,
capped at 8 replicates": each round runs one more replicate for every
point whose interval is still too wide, and every round batches *all*
active points' pending replicates into one ``engine.run()`` call so
the pool stays saturated.  Because each replicate's result is fully
deterministic (content-keyed seeds, canonical result round-trip), the
stopping decisions — and therefore the final replicate counts and
estimates — are bit-identical across pool sizes and cache states.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.stats.estimate import (
    DEFAULT_CONFIDENCE,
    MetricEstimate,
    estimate_from_samples,
)
from repro.stats.seeds import replicate_seed
from repro.sweep.engine import (
    OBJECTIVES,
    SweepEngine,
    SweepOutcome,
    objective_value,
)
from repro.sweep.points import SweepPoint


@dataclass(frozen=True)
class ReplicationPolicy:
    """How many replicates to run, and when to stop early.

    With ``ci_target=None`` (the default) every point runs exactly
    ``r_max`` replicates.  With a target set, every point starts at
    ``r_min`` replicates and grows one per round until the estimate's
    relative half-width at ``confidence`` is within ``ci_target``, or
    ``r_max`` is reached — whichever comes first.
    """

    r_min: int = 2
    r_max: int = 8
    ci_target: Optional[float] = None
    confidence: float = DEFAULT_CONFIDENCE

    def __post_init__(self):
        if self.r_min < 1:
            raise ValueError(f"r_min must be >= 1, got {self.r_min}")
        if self.r_max < self.r_min:
            raise ValueError(
                f"r_max ({self.r_max}) must be >= r_min ({self.r_min})"
            )
        if self.ci_target is not None and not self.ci_target > 0.0:
            raise ValueError(
                f"ci_target must be positive, got {self.ci_target}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )

    @property
    def fixed(self) -> bool:
        """True when no stopping rule applies (always run ``r_max``)."""
        return self.ci_target is None

    @property
    def initial_replicates(self) -> int:
        """Replicates the first round runs for every point."""
        return self.r_max if self.fixed else self.r_min


@dataclass
class ReplicatedOutcome:
    """One design point's pooled estimate plus its replicates.

    ``outcomes`` holds the individual replicate outcomes in replicate
    order — including quarantined ones (``result=None`` plus a
    ``failure`` record), which the estimate ignores; ``estimate``
    pools the successful replicates' objective values.  ``met_target``
    is False whenever the policy had no target (fixed replication) or
    the point hit ``r_max`` with the interval still too wide.
    """

    point: SweepPoint
    key: str
    objective: str
    outcomes: List[SweepOutcome]
    estimate: MetricEstimate
    met_target: bool = False

    @property
    def replicates(self) -> int:
        """How many replicates this point ran (attempts, not successes)."""
        return len(self.outcomes)

    @property
    def quarantined(self) -> int:
        """How many replicates ended quarantined instead of measured."""
        return sum(1 for o in self.outcomes if o.failed)

    @property
    def successes(self) -> int:
        """How many replicates produced a measurable result."""
        return len(self.outcomes) - self.quarantined

    @property
    def result(self):
        """The first successful replicate's result — the
        representative sample; None when every replicate quarantined."""
        for outcome in self.outcomes:
            if not outcome.failed:
                return outcome.result
        return None

    def values(self) -> List[float]:
        """Successful replicates' objective values, in replicate order."""
        return [objective_value(o.result, self.objective)
                for o in self.outcomes if not o.failed]

    def row(self) -> dict:
        """Deterministic report row for this replicated point.

        Only simulation-derived fields appear (no wall-clock times, no
        cache provenance), so rows are bit-identical across pool sizes,
        batch sizes, and cold/warm cache states.
        """
        est = self.estimate
        return {
            "config": self.point.config.name,
            "workload": self.point.workload,
            "objective": self.objective,
            "mean": est.mean,
            "half_width": est.half_width,
            "relative_half_width": est.relative_half_width,
            "confidence": est.confidence,
            "replicates": self.replicates,
            "quarantined": self.quarantined,
            "met_target": self.met_target,
            "stddev": est.stddev,
            "values": self.values(),
            "key": self.key,
        }


def ranked_replicated(
    outcomes: Sequence[ReplicatedOutcome],
    objective: str = "mean_latency_ns",
) -> List[ReplicatedOutcome]:
    """Replicated outcomes sorted best-first on the estimate's mean.

    Mirrors :func:`repro.sweep.engine.ranked`: the objective's
    direction decides the sign, ties break on the config cache key
    then the workload name so the ranking is total and reproducible,
    and points whose every replicate quarantined (no measurable value
    at all) are skipped — reports list them separately.
    """
    _, higher_better = OBJECTIVES[objective]
    sign = -1.0 if higher_better else 1.0
    return sorted(
        (o for o in outcomes if o.successes > 0),
        key=lambda o: (sign * o.estimate.mean,
                       o.point.config.cache_key(), o.point.workload),
    )


class ReplicatedRunner:
    """Runs design points as seed-replicated ensembles with CIs.

    The runner owns no pool and no cache — it drives the
    :class:`~repro.sweep.engine.SweepEngine` it is given, so replicates
    parallelize on the engine's warm workers and individual replicate
    results land in the engine's content-addressed store (a resumed
    sweep replays them for free).  Replicate points differ from the
    base point only in their derived seed and in ``rng_streams=True``
    (the substream discipline CRN comparisons need).

    Metrics (optional :class:`repro.obs.MetricsRegistry`) appear under
    ``stats.*``: replicate counts, early-stop outcomes, and the latest
    pooled estimate per objective.
    """

    def __init__(self, engine: SweepEngine,
                 policy: Optional[ReplicationPolicy] = None,
                 metrics=None):
        self.engine = engine
        self.policy = policy if policy is not None else ReplicationPolicy()
        self.metrics = metrics
        #: replicate simulations requested by the most recent :meth:`run`
        self.last_replicates = 0
        #: rounds (engine.run calls) of the most recent :meth:`run`
        self.last_rounds = 0

    def replicate_point(self, point: SweepPoint, replicate: int,
                        base: Optional[str] = None) -> SweepPoint:
        """The concrete sweep point of one replicate.

        ``base`` overrides the seed-derivation base key; CRN pairing
        passes :func:`repro.stats.seeds.crn_pair_base` here so both
        sides of a comparison draw identical traffic.
        """
        base_key = point.key() if base is None else base
        return dataclasses.replace(
            point,
            seed=replicate_seed(base_key, replicate),
            rng_streams=True,
        )

    def run(self, points: Sequence[SweepPoint],
            objective: str = "mean_latency_ns",
            bases: Optional[Sequence[str]] = None,
            ) -> List[ReplicatedOutcome]:
        """Replicate every point per the policy; outcomes in input order.

        Each round gathers the pending replicates of *every* still-
        active point into a single ``engine.run()`` call, so the warm
        pool works on the whole frontier at once instead of draining
        point by point.  ``bases`` (parallel to ``points``) overrides
        the per-point seed-derivation base keys — the CRN hook.

        Quarantined replicates (see :mod:`repro.sweep.recovery`) count
        as attempts toward ``r_max`` but contribute no value to the
        pooled estimate, so a poison seed narrows a point's sample —
        it never loops the study forever or aborts it.
        """
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; expected one of "
                f"{sorted(OBJECTIVES)}"
            )
        points = list(points)
        if bases is not None and len(bases) != len(points):
            raise ValueError(
                f"bases ({len(bases)}) must parallel points "
                f"({len(points)})"
            )
        base_keys = [
            p.key() if bases is None else bases[i]
            for i, p in enumerate(points)
        ]
        policy = self.policy
        reps: List[List[SweepOutcome]] = [[] for _ in points]
        active = list(range(len(points)))
        self.last_replicates = 0
        self.last_rounds = 0
        telemetry = getattr(self.engine, "telemetry", None)
        while active:
            batch: List[tuple] = []
            for i in active:
                want = (policy.initial_replicates if not reps[i]
                        else len(reps[i]) + 1)
                for r in range(len(reps[i]), want):
                    batch.append((i, r))
            batch_points = [
                self.replicate_point(points[i], r, base=base_keys[i])
                for i, r in batch
            ]
            if telemetry is not None:
                # Stamped onto the round's run-ledger record, so the
                # ledger shows which engine runs were replication
                # rounds and how wide the active frontier still was.
                telemetry.context["replication"] = {
                    "round": self.last_rounds + 1,
                    "replicates": len(batch),
                    "active_points": len(active),
                }
            for (i, _), outcome in zip(batch,
                                       self.engine.run(batch_points)):
                reps[i].append(outcome)
            self.last_replicates += len(batch)
            self.last_rounds += 1
            still_active = []
            for i in active:
                if policy.fixed:
                    if len(reps[i]) < policy.r_max:
                        still_active.append(i)
                    continue
                estimate = self._pooled(reps[i], objective)
                if (not estimate.meets(policy.ci_target)
                        and len(reps[i]) < policy.r_max):
                    still_active.append(i)
            active = still_active
        if telemetry is not None:
            telemetry.context.pop("replication", None)
            telemetry.record_replication({
                "points": len(points),
                "objective": objective,
                "replicates": self.last_replicates,
                "rounds": self.last_rounds,
                "quarantined": sum(
                    1 for outcomes in reps for o in outcomes if o.failed
                ),
                "r_min": policy.r_min,
                "r_max": policy.r_max,
                "ci_target": policy.ci_target,
            })

        results = []
        for i, point in enumerate(points):
            estimate = self._pooled(reps[i], objective)
            met = (not policy.fixed
                   and estimate.meets(policy.ci_target))
            results.append(ReplicatedOutcome(
                point=point, key=base_keys[i], objective=objective,
                outcomes=reps[i], estimate=estimate, met_target=met,
            ))
        self._publish(results, objective)
        return results

    def _pooled(self, outcomes: List[SweepOutcome],
                objective: str) -> MetricEstimate:
        """Pool one point's successful replicate values into a t-based
        estimate.

        Quarantined replicates contribute no value.  A point whose
        every replicate quarantined gets an honest "no data" estimate
        (NaN mean, one-sample infinite half-width) instead of raising,
        so one poison point cannot abort a whole replication study.
        """
        values = [objective_value(o.result, objective)
                  for o in outcomes if not o.failed]
        quarantined = len(outcomes) - len(values)
        return estimate_from_samples(
            values if values else [float("nan")],
            confidence=self.policy.confidence,
            method="replicates",
            diagnostics={"replicates": len(values),
                         "quarantined": quarantined},
        )

    def _publish(self, results: List[ReplicatedOutcome],
                 objective: str) -> None:
        """Publish run statistics into the attached metrics registry."""
        if self.metrics is None:
            return
        self.metrics.counter("stats.points_total").inc(len(results))
        self.metrics.counter("stats.replicates_total").inc(
            self.last_replicates)
        self.metrics.counter("stats.points_met_target").inc(
            sum(1 for r in results if r.met_target))
        if not self.policy.fixed:
            self.metrics.counter("stats.points_capped").inc(
                sum(1 for r in results if not r.met_target))
        quarantined = sum(r.quarantined for r in results)
        if quarantined:
            self.metrics.counter("stats.replicates_quarantined").inc(
                quarantined)
        summary = self.metrics.estimate(f"stats.estimate.{objective}")
        for outcome in results:
            if outcome.successes:
                summary.record(outcome.estimate)

    def __repr__(self) -> str:
        return (
            f"ReplicatedRunner(policy={self.policy!r}, "
            f"engine={self.engine!r})"
        )
