"""Seed derivation for replicated runs and common random numbers.

Every replicate of a design point must be (a) statistically
independent of its siblings, (b) bit-reproducible anywhere, and
(c) derivable without coordination — a worker that knows the point and
the replicate index knows the seed.  Deriving replicate seeds from the
point's *content key* (a SHA-256 over everything that affects the
simulation) gives all three: the derivation below is pure, and its
exact format is a golden-pinned compatibility contract, just like
``ArchitectureConfig.cache_key()`` — changing it silently changes
every replicated result, so tests pin representative values.

The per-``(master, stream)`` substream half of the discipline lives
next to the traffic generator
(:func:`repro.explore.workload.substream_seed`) and is re-exported
here so :mod:`repro.stats` is the one-stop seed-derivation namespace.
"""

from __future__ import annotations

import hashlib

from repro.explore.workload import SUBSTREAMS, substream_seed

__all__ = [
    "SUBSTREAMS",
    "crn_pair_base",
    "replicate_seed",
    "substream_seed",
]


def replicate_seed(base_key: str, replicate: int) -> int:
    """Derive the workload seed of one replicate from a content key.

    The seed is the top 64 bits of
    ``SHA-256(f"{base_key}|replicate={replicate}")`` — uniform,
    collision-free in practice, and stable across processes and python
    versions.  ``base_key`` is normally
    :meth:`repro.sweep.SweepPoint.key`, so two *different* design
    points never share replicate seeds (independent by construction),
    while CRN pairing passes a shared :func:`crn_pair_base` instead.
    """
    if replicate < 0:
        raise ValueError(f"replicate index must be >= 0, got {replicate}")
    text = f"{base_key}|replicate={replicate}"
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


def crn_pair_base(key_a: str, key_b: str) -> str:
    """Shared seed-derivation base for a CRN-paired comparison.

    Order-independent (the keys are sorted), so ``compare(a, b)`` and
    ``compare(b, a)`` draw identical traffic.  Feeding the result to
    :func:`replicate_seed` gives both sides of replicate ``r`` the
    same workload seed — the whole point of common random numbers.
    """
    lo, hi = sorted((key_a, key_b))
    return f"crn[{lo}|{hi}]"
