"""The design-flow driver: run one application across abstraction levels.

Figure 1 of the paper shows a single system description refined through
component-assembly, CCATB, and communication-architecture models down to
the prototype.  The promise of a *systematic* flow is that each
refinement changes only the communication mapping, never the behaviour —
so the outputs at every level must be identical, while timing fidelity
grows and simulation speed drops.

:class:`DesignFlow` packages that discipline: each level registers a
*builder* producing a fresh simulation plus an output probe; the driver
runs each stage, checks cross-level functional equivalence, and reports
the speed/accuracy profile.  Experiment F1 and the flow examples are
written against this driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernel.context import SimContext
from repro.kernel.errors import KernelError
from repro.kernel.simtime import SimTime
from repro.models.levels import AbstractionLevel

#: A builder returns the fresh context and a zero-arg output extractor
#: to call after the run.
StageBuilder = Callable[[], Tuple[SimContext, Callable[[], list]]]


class FlowError(KernelError):
    """A stage failed or the flow is mis-assembled."""


@dataclass
class StageResult:
    """Outcome of running one abstraction level."""

    level: AbstractionLevel
    outputs: list
    sim_time: SimTime
    wall_seconds: float
    delta_cycles: int

    @property
    def sim_ns(self) -> float:
        """Simulated completion time in nanoseconds."""
        return self.sim_time.to("ns")

    def speed_events_per_second(self) -> float:
        """Delta cycles per wall second — a proxy for simulation speed."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.delta_cycles / self.wall_seconds


@dataclass
class FlowReport:
    """The cross-level summary."""

    name: str
    results: Dict[AbstractionLevel, StageResult] = field(
        default_factory=dict
    )

    @property
    def levels(self) -> List[AbstractionLevel]:
        """Levels present, most abstract first."""
        return sorted(self.results)

    @property
    def functionally_equivalent(self) -> bool:
        """All levels produced identical outputs."""
        outputs = [self.results[lvl].outputs for lvl in self.levels]
        return all(o == outputs[0] for o in outputs[1:])

    def mismatches(self) -> List[Tuple[AbstractionLevel, AbstractionLevel]]:
        """Level pairs whose outputs differ."""
        levels = self.levels
        bad = []
        for i, a in enumerate(levels):
            for b in levels[i + 1:]:
                if self.results[a].outputs != self.results[b].outputs:
                    bad.append((a, b))
        return bad

    def timing_monotone(self) -> bool:
        """Simulated completion time must not *decrease* as timing
        detail is added (untimed <= CCATB <= CAM ...)."""
        times = [self.results[lvl].sim_time for lvl in self.levels]
        return all(t1 <= t2 for t1, t2 in zip(times, times[1:]))

    def format_table(self) -> str:
        """Human-readable per-level profile table."""
        lines = [
            f"design flow: {self.name}",
            f"{'level':24} {'sim time':>14} {'deltas':>10} "
            f"{'wall s':>9} {'deltas/s':>12}",
        ]
        for lvl in self.levels:
            res = self.results[lvl]
            lines.append(
                f"{lvl.name:24} {str(res.sim_time):>14} "
                f"{res.delta_cycles:>10} {res.wall_seconds:>9.4f} "
                f"{res.speed_events_per_second():>12.0f}"
            )
        lines.append(
            f"functionally equivalent: {self.functionally_equivalent}"
        )
        return "\n".join(lines)


class DesignFlow:
    """Register builders per level, then run the whole flow."""

    def __init__(self, name: str):
        self.name = name
        self._builders: Dict[AbstractionLevel, StageBuilder] = {}

    def register(self, level: AbstractionLevel,
                 builder: StageBuilder) -> None:
        """Attach a stage builder to an abstraction level."""
        if level in self._builders:
            raise FlowError(
                f"flow {self.name!r}: level {level.name} already has a "
                f"builder"
            )
        self._builders[level] = builder

    def run_stage(self, level: AbstractionLevel,
                  max_time: Optional[SimTime] = None) -> StageResult:
        """Build and simulate one level; returns its result."""
        try:
            builder = self._builders[level]
        except KeyError:
            raise FlowError(
                f"flow {self.name!r}: no builder for level {level.name}"
            ) from None
        ctx, output_getter = builder()
        wall_start = time.perf_counter()
        if max_time is not None:
            ctx.run(max_time)
        else:
            ctx.run()
        wall = time.perf_counter() - wall_start
        return StageResult(
            level=level,
            outputs=output_getter(),
            # completion time, not the run horizon: bounded runs advance
            # `now` to the bound on starvation
            sim_time=ctx.last_activity_time,
            wall_seconds=wall,
            delta_cycles=ctx.delta_count,
        )

    def run_all(self, max_time: Optional[SimTime] = None) -> FlowReport:
        """Run every registered stage, most abstract first."""
        if not self._builders:
            raise FlowError(f"flow {self.name!r}: no stages registered")
        report = FlowReport(name=self.name)
        for level in sorted(self._builders):
            report.results[level] = self.run_stage(level, max_time)
        return report
