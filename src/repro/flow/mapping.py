"""Automatic mapping of a system's communication onto an architecture.

The paper's abstract promises *"a methodology for automatic mapping of
the communication part of a system to a given architecture, including
HW/SW interfaces."*  :class:`SystemMapper` is that methodology as an
API: the designer declares the system's point-to-point SHIP connections
once — with each endpoint marked HW or SW — and selects a target; the
mapper allocates all communication resources:

=========  ==========================================================
target     what a connection becomes
=========  ==========================================================
``pv``     one untimed :class:`ShipChannel`
``ccatb``  one :class:`ShipChannel` with the mapper's timing annotation
a fabric   HW<->HW: a SHIP-over-bus link (mailbox + wrappers), with
           mailbox addresses allocated automatically;
           SW->HW: the generic HW/SW interface, SW-master orientation
           (device driver + communication library);
           HW->SW: the HW/SW interface, HW-master orientation;
           SW<->SW: a local channel accessed through the RTOS
           communication library on both ends
=========  ==========================================================

PE code binds SHIP ports to the returned attachment exactly as at the
component-assembly level; SW tasks call the returned port object.  No
endpoint source changes between targets — the paper's core promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.kernel.errors import ElaborationError
from repro.kernel.module import Module
from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.models.wrappers import build_ship_over_bus
from repro.rtos.core import Rtos
from repro.ship.channel import ShipChannel, ShipTiming
from repro.esw.synthesis import SwChannelPort
from repro.hwsw.interface import (
    build_sw_master_interface,
    build_sw_slave_interface,
)


@dataclass
class MappedConnection:
    """The realized resources for one point-to-point connection.

    ``master_attach`` / ``slave_attach`` are what the two endpoints
    use: a :class:`ShipChannel` for HW PEs (bind a SHIP port to it) or
    a SW port object for RTOS tasks (call the four SHIP methods on it).
    """

    name: str
    master_kind: str   # "hw" | "sw"
    slave_kind: str    # "hw" | "sw"
    mapping: str       # human-readable resource description
    master_attach: object = None
    slave_attach: object = None
    link: object = None   # the underlying link/interface object, if any

    def as_row(self) -> Dict[str, str]:
        """Flat dict row for the mapping report."""
        return {
            "connection": self.name,
            "master": self.master_kind,
            "slave": self.slave_kind,
            "mapped_to": self.mapping,
        }


class SystemMapper:
    """Allocates communication resources for SHIP connections.

    Parameters
    ----------
    parent:
        Module under which mapper-created objects live.
    target:
        ``"pv"``, ``"ccatb"``, or a fabric instance (any object with
        ``attach_slave`` and ``master_socket`` — the CAM duck type).
    rtos:
        Required when any endpoint is software.
    ship_timing:
        The CCATB annotation (``target="ccatb"``).
    mailbox_base / mailbox_stride:
        Address allocator for fabric-mapped connections.
    """

    def __init__(
        self,
        parent: Module,
        target: Union[str, object] = "pv",
        rtos: Optional[Rtos] = None,
        ship_timing: Optional[ShipTiming] = None,
        mailbox_base: int = 0x100000,
        mailbox_stride: int = 0x10000,
        capacity_words: int = 64,
        use_irq: bool = False,
        poll_interval: Optional[SimTime] = None,
        driver_overhead: SimTime = ZERO_TIME,
    ):
        if isinstance(target, str):
            if target not in ("pv", "ccatb"):
                raise ElaborationError(
                    f"unknown mapping target {target!r}; pass 'pv', "
                    f"'ccatb', or a fabric instance"
                )
            self.fabric = None
        else:
            for attr in ("attach_slave", "master_socket"):
                if not hasattr(target, attr):
                    raise ElaborationError(
                        f"mapping target must provide {attr}()"
                    )
            self.fabric = target
            target = "cam"
        self.target = target
        self.parent = parent
        self.rtos = rtos
        self.ship_timing = ship_timing or ShipTiming()
        self.capacity_words = capacity_words
        self.use_irq = use_irq
        self.poll_interval = poll_interval
        self.driver_overhead = driver_overhead
        self._next_base = mailbox_base
        self._stride = mailbox_stride
        self.connections: List[MappedConnection] = []
        self._names: set = set()

    # -- address allocation -------------------------------------------------------

    def _allocate_base(self) -> int:
        base = self._next_base
        self._next_base += self._stride
        return base

    def _require_rtos(self, name: str) -> Rtos:
        if self.rtos is None:
            raise ElaborationError(
                f"connection {name!r} has a software endpoint but the "
                f"mapper was built without an RTOS"
            )
        return self.rtos

    # -- the mapping step ------------------------------------------------------------

    def connect(self, name: str, master: str = "hw",
                slave: str = "hw",
                bus_priority: int = 0) -> MappedConnection:
        """Map one directed point-to-point connection.

        ``bus_priority`` sets the fabric arbitration priority of the
        master-side attachment (lower wins); ignored for channel
        targets.
        """
        if name in self._names:
            raise ElaborationError(
                f"connection name {name!r} already mapped"
            )
        if master not in ("hw", "sw") or slave not in ("hw", "sw"):
            raise ElaborationError(
                f"endpoint kinds must be 'hw' or 'sw', got "
                f"{master!r}/{slave!r}"
            )
        self._names.add(name)
        if self.target == "pv":
            conn = self._map_channel(name, master, slave,
                                     timing=None, label="untimed channel")
        elif self.target == "ccatb":
            conn = self._map_channel(name, master, slave,
                                     timing=self.ship_timing,
                                     label="annotated channel (CCATB)")
        else:
            conn = self._map_fabric(name, master, slave, bus_priority)
        self.connections.append(conn)
        return conn

    def _map_channel(self, name, master, slave, timing,
                     label) -> MappedConnection:
        channel = ShipChannel(f"{name}_ch", self.parent, timing=timing)
        master_attach: object = channel
        slave_attach: object = channel
        if master == "sw":
            master_attach = SwChannelPort(self._require_rtos(name),
                                          channel)
            label += " + SW comm library (master)"
        if slave == "sw":
            slave_attach = SwChannelPort(self._require_rtos(name),
                                         channel)
            label += " + SW comm library (slave)"
        return MappedConnection(
            name=name, master_kind=master, slave_kind=slave,
            mapping=label,
            master_attach=master_attach, slave_attach=slave_attach,
            link=channel,
        )

    def _map_fabric(self, name, master, slave,
                    bus_priority: int = 0) -> MappedConnection:
        fabric_name = getattr(self.fabric, "full_name", "fabric")
        if master == "sw" and slave == "sw":
            # same-CPU software: local channel via the comm library;
            # no bus resources needed
            return self._map_channel(
                name, master, slave, timing=None,
                label="local channel (same CPU)",
            )
        if master == "hw" and slave == "hw":
            base = self._allocate_base()
            link = build_ship_over_bus(
                f"{name}_lnk", self.parent, self.fabric, base,
                master_priority=bus_priority,
                capacity_words=self.capacity_words,
                use_irq=self.use_irq,
                poll_interval=self.poll_interval,
            )
            return MappedConnection(
                name=name, master_kind=master, slave_kind=slave,
                mapping=(f"SHIP-over-{fabric_name} link, mailbox @ "
                         f"{base:#x}"),
                master_attach=link.master_channel,
                slave_attach=link.slave_channel,
                link=link,
            )
        if master == "sw":
            base = self._allocate_base()
            link = build_sw_master_interface(
                f"{name}_hwsw", self.parent, self.fabric,
                self._require_rtos(name), base,
                capacity_words=self.capacity_words,
                use_irq=self.use_irq,
                poll_interval=self.poll_interval or ZERO_TIME,
                access_overhead=self.driver_overhead,
                cpu_priority=bus_priority,
            )
            return MappedConnection(
                name=name, master_kind=master, slave_kind=slave,
                mapping=(f"HW/SW interface (SW master) on "
                         f"{fabric_name}, mailbox @ {base:#x}"),
                master_attach=link.sw_port,
                slave_attach=link.hw_channel,
                link=link,
            )
        # hw master, sw slave
        base = self._allocate_base()
        link = build_sw_slave_interface(
            f"{name}_hwsw", self.parent, self.fabric,
            self._require_rtos(name), base,
            capacity_words=self.capacity_words,
            hw_poll_interval=self.poll_interval,
            access_overhead=self.driver_overhead,
            hw_priority=bus_priority,
        )
        return MappedConnection(
            name=name, master_kind=master, slave_kind=slave,
            mapping=(f"HW/SW interface (HW master) on {fabric_name}, "
                     f"mailbox @ {base:#x}"),
            master_attach=link.hw_channel,
            slave_attach=link.sw_port,
            link=link,
        )

    # -- reporting -------------------------------------------------------------------

    def report_rows(self) -> List[Dict[str, str]]:
        """The mapping table: one row per connection."""
        return [conn.as_row() for conn in self.connections]
