"""``repro.flow`` — the Figure-1 design-flow driver.

Runs one application across the TLM abstraction levels, checking
functional equivalence and collecting the speed/accuracy profile.
"""

from repro.flow.driver import (
    DesignFlow,
    FlowError,
    FlowReport,
    StageResult,
)
from repro.flow.mapping import MappedConnection, SystemMapper

__all__ = [
    "DesignFlow",
    "FlowError",
    "FlowReport",
    "MappedConnection",
    "StageResult",
    "SystemMapper",
]
