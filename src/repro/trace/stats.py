"""Streaming statistics used by bus monitors and the exploration engine.

Everything here is *online* (O(1) memory per statistic) so monitors can be
left attached during long architecture-exploration sweeps without
accumulating per-sample storage — except :class:`Histogram`, which uses a
fixed bin array.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.kernel.simtime import SimTime, ZERO_TIME


class OnlineStats:
    """Welford-style running count/mean/variance with min/max."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.total = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Running mean (0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sample_variance(self) -> float:
        """Unbiased (n-1) sample variance; 0 below two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def sample_stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.sample_variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean (sample stddev / sqrt(n))."""
        if self.count < 2:
            return 0.0
        return self.sample_stddev / math.sqrt(self.count)

    def confidence_interval(
        self, confidence: float = 0.95,
    ) -> Tuple[float, float]:
        """Two-sided t-based CI for the mean at ``confidence``.

        Because the moments merge exactly (:meth:`merge` is Chan's
        parallel algorithm), the interval computed from a merged
        statistic equals the one computed over the combined stream —
        the merge-safe CI the replicated sweep runner pools on.  Below
        two samples the interval is unbounded.
        """
        if self.count < 2:
            return (-math.inf, math.inf)
        # Lazy import: repro.stats builds on this module, so the
        # t-quantile lookup must not be a module-level dependency.
        from repro.stats.estimate import t_quantile

        half = t_quantile(
            0.5 + confidence / 2.0, self.count - 1) * self.sem
        return (self.mean - half, self.mean + half)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two statistics (Chan's parallel algorithm)."""
        merged = OnlineStats()
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged.total = self.total + other.total
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2
            + delta * delta * self.count * other.count / n
        )
        mins = [m for m in (self.minimum, other.minimum) if m is not None]
        maxs = [m for m in (self.maximum, other.maximum) if m is not None]
        merged.minimum = min(mins) if mins else None
        merged.maximum = max(maxs) if maxs else None
        return merged

    def __snapshot__(self) -> dict:
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "total": self.total,
        }

    def __restore__(self, state: dict) -> None:
        self.count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self.minimum = state["minimum"]
        self.maximum = state["maximum"]
        self.total = state["total"]

    def __repr__(self) -> str:
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.4g}, "
            f"std={self.stddev:.4g}, min={self.minimum}, max={self.maximum})"
        )


class TimeStats:
    """OnlineStats over :class:`SimTime` samples (stored as ns floats)."""

    __slots__ = ("_stats",)

    def __init__(self):
        self._stats = OnlineStats()

    def add(self, duration: SimTime) -> None:
        """Fold one duration into the statistics."""
        self._stats.add(duration.to("ns"))

    @property
    def count(self) -> int:
        """Number of samples."""
        return self._stats.count

    @property
    def mean_ns(self) -> float:
        """Mean duration in nanoseconds."""
        return self._stats.mean

    @property
    def min_ns(self) -> float:
        """Minimum duration in nanoseconds."""
        return self._stats.minimum or 0.0

    @property
    def max_ns(self) -> float:
        """Maximum duration in nanoseconds."""
        return self._stats.maximum or 0.0

    @property
    def stddev_ns(self) -> float:
        """Standard deviation in nanoseconds."""
        return self._stats.stddev

    @property
    def total_ns(self) -> float:
        """Summed duration in nanoseconds."""
        return self._stats.total

    def __snapshot__(self) -> dict:
        return self._stats.__snapshot__()

    def __restore__(self, state: dict) -> None:
        self._stats.__restore__(state)

    def __repr__(self) -> str:
        return (
            f"TimeStats(n={self.count}, mean={self.mean_ns:.2f} ns, "
            f"max={self.max_ns:.2f} ns)"
        )


class Histogram:
    """Fixed-width histogram with under/overflow bins."""

    def __init__(self, low: float, high: float, bins: int = 20):
        if high <= low:
            raise ValueError(f"histogram bounds inverted: [{low}, {high})")
        if bins < 1:
            raise ValueError("histogram needs at least one bin")
        self.low = low
        self.high = high
        self.bins = bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (high - low) / bins

    def add(self, value: float) -> None:
        """Bin one sample (under/overflow counted)."""
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            # The division can round up to ``bins`` for values one ulp
            # below ``high`` when the bin width itself rounded down;
            # clamp instead of raising IndexError.
            index = int((value - self.low) / self._width)
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        """All samples including under/overflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[Tuple[float, float]]:
        """The ``(low, high)`` edges of every bin."""
        return [
            (self.low + i * self._width, self.low + (i + 1) * self._width)
            for i in range(self.bins)
        ]

    def __snapshot__(self) -> dict:
        return {
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    def __restore__(self, state: dict) -> None:
        self.counts = list(state["counts"])
        self.underflow = state["underflow"]
        self.overflow = state["overflow"]

    def quantile(self, q: float) -> float:
        """Approximate quantile from binned data (midpoint rule)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.total
        seen = self.underflow
        if seen >= target:
            return self.low
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                return self.low + (i + 0.5) * self._width
        return self.high


class ThroughputMeter:
    """Accumulates byte/transaction counts over simulated time."""

    def __init__(self):
        self.bytes = 0
        self.transactions = 0
        self.start_time: Optional[SimTime] = None
        self.end_time: Optional[SimTime] = None

    def record(self, now: SimTime, nbytes: int) -> None:
        """Account one transfer at simulated time ``now``."""
        if self.start_time is None:
            self.start_time = now
        self.end_time = now
        self.bytes += nbytes
        self.transactions += 1

    @property
    def elapsed(self) -> SimTime:
        """Simulated time between first and last transfer."""
        if self.start_time is None or self.end_time is None:
            return ZERO_TIME
        return self.end_time - self.start_time

    def __snapshot__(self) -> dict:
        return {
            "bytes": self.bytes,
            "transactions": self.transactions,
            "start_fs": None if self.start_time is None
            else self.start_time._fs,
            "end_fs": None if self.end_time is None else self.end_time._fs,
        }

    def __restore__(self, state: dict) -> None:
        self.bytes = state["bytes"]
        self.transactions = state["transactions"]
        start, end = state["start_fs"], state["end_fs"]
        self.start_time = None if start is None else SimTime._from_fs(start)
        self.end_time = None if end is None else SimTime._from_fs(end)

    def bytes_per_second(self) -> float:
        """Byte rate over the active window."""
        elapsed_s = self.elapsed.to("sec")
        return self.bytes / elapsed_s if elapsed_s > 0 else 0.0

    def transactions_per_second(self) -> float:
        """Transfer rate over the active window."""
        elapsed_s = self.elapsed.to("sec")
        return self.transactions / elapsed_s if elapsed_s > 0 else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the standard summary for speedup ratios."""
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
