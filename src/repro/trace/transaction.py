"""Transaction recording.

Every TLM channel in the library (SHIP, OCP, the bus CAMs) can be handed
a :class:`TransactionRecorder`; it captures one :class:`TransactionRecord`
per completed transaction with begin/end timestamps and free-form
attributes.  The recorder is what the CCATB-accuracy experiment (E2) and
the exploration engine (E3) read their cycle counts and latencies from.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.simtime import SimTime
from repro.trace.stats import TimeStats


@dataclass
class TransactionRecord:
    """One completed transaction."""

    uid: int
    channel: str
    kind: str               # e.g. "read", "write", "send", "request"
    initiator: str
    target: str
    begin: SimTime
    end: SimTime
    nbytes: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def latency(self) -> SimTime:
        """End minus begin."""
        return self.end - self.begin

    def as_row(self) -> Dict[str, object]:
        """Flat dict row for tables and CSV."""
        row = {
            "uid": self.uid,
            "channel": self.channel,
            "kind": self.kind,
            "initiator": self.initiator,
            "target": self.target,
            "begin_ns": self.begin.to("ns"),
            "end_ns": self.end.to("ns"),
            "latency_ns": self.latency.to("ns"),
            "nbytes": self.nbytes,
        }
        row.update(self.attributes)
        return row


class TransactionRecorder:
    """Collects transaction records and derives summary statistics.

    Summary statistics (counts, bytes, latency moments) accumulate
    whether or not records are retained: ``keep_records=False`` trades
    the per-record storage away while every statistic and metric keeps
    working, which is the long-sweep / exploration configuration.

    ``metrics`` optionally publishes the stream into a
    :class:`repro.obs.metrics.MetricsRegistry` (duck-typed, so this
    module does not depend on the observability layer): counters
    ``{prefix}.transactions`` / ``{prefix}.bytes`` and histogram
    ``{prefix}.latency_ns``, with ``prefix`` defaulting to ``trace``.
    """

    def __init__(self, keep_records: bool = True, metrics=None,
                 metrics_prefix: Optional[str] = None):
        self.keep_records = keep_records
        self.records: List[TransactionRecord] = []
        self.count = 0
        self.total_bytes = 0
        self._uid = itertools.count()
        self.latency_by_kind: Dict[str, TimeStats] = {}
        #: Latency over *all* kinds; kept online so it survives
        #: ``keep_records=False``.
        self._overall_latency = TimeStats()
        self._listeners: List[Callable[[TransactionRecord], None]] = []
        self.metrics = metrics
        if metrics is not None:
            prefix = metrics_prefix or "trace"
            self._m_transactions = metrics.counter(f"{prefix}.transactions")
            self._m_bytes = metrics.counter(f"{prefix}.bytes")
            self._m_latency = metrics.histogram(f"{prefix}.latency_ns")
        else:
            self._m_transactions = None
            self._m_bytes = None
            self._m_latency = None

    def record(
        self,
        channel: str,
        kind: str,
        initiator: str,
        target: str,
        begin: SimTime,
        end: SimTime,
        nbytes: int = 0,
        **attributes,
    ) -> TransactionRecord:
        """Store one completed transaction; returns the record."""
        rec = TransactionRecord(
            uid=next(self._uid),
            channel=channel,
            kind=kind,
            initiator=initiator,
            target=target,
            begin=begin,
            end=end,
            nbytes=nbytes,
            attributes=attributes,
        )
        self.count += 1
        self.total_bytes += nbytes
        latency = rec.latency
        self.latency_by_kind.setdefault(kind, TimeStats()).add(latency)
        self._overall_latency.add(latency)
        if self._m_transactions is not None:
            self._m_transactions.inc()
            self._m_bytes.inc(nbytes)
            self._m_latency.observe(latency.to("ns"))
        if self.keep_records:
            self.records.append(rec)
        for listener in self._listeners:
            listener(rec)
        return rec

    def subscribe(self, listener: Callable[[TransactionRecord], None]) -> None:
        """Call ``listener`` for every new record."""
        self._listeners.append(listener)

    # -- queries -----------------------------------------------------------------

    def by_kind(self, kind: str) -> List[TransactionRecord]:
        """Kept records of the given kind."""
        return [r for r in self.records if r.kind == kind]

    def by_initiator(self, initiator: str) -> List[TransactionRecord]:
        """Kept records from the given initiator."""
        return [r for r in self.records if r.initiator == initiator]

    def latency_stats(self, kind: Optional[str] = None) -> TimeStats:
        """Latency statistics, optionally restricted to one kind.

        The overall statistics are maintained online, so they are exact
        even with ``keep_records=False``.
        """
        if kind is not None:
            return self.latency_by_kind.get(kind, TimeStats())
        return self._overall_latency

    def to_csv(self, path: str) -> None:
        """Dump all records to a CSV file for offline analysis."""
        if not self.records:
            with open(path, "w", newline="", encoding="utf-8") as fh:
                fh.write("")
            return
        keys = list(self.records[0].as_row().keys())
        for rec in self.records:
            for key in rec.as_row():
                if key not in keys:
                    keys.append(key)
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=keys, restval="")
            writer.writeheader()
            for rec in self.records:
                writer.writerow(rec.as_row())

    def clear(self) -> None:
        """Drop records and reset statistics.

        Metrics already published to an attached registry are counters
        in that registry's namespace and are intentionally not rolled
        back.
        """
        self.records.clear()
        self.count = 0
        self.total_bytes = 0
        self.latency_by_kind.clear()
        self._overall_latency = TimeStats()


def latency_histogram(recorder: TransactionRecorder, bins: int = 20,
                      kind: Optional[str] = None):
    """Build a latency :class:`~repro.trace.stats.Histogram` (ns) from a
    recorder's kept records.

    The bin range spans the observed min/max; requires
    ``keep_records=True`` and at least one record.
    """
    from repro.trace.stats import Histogram

    records = (recorder.by_kind(kind) if kind is not None
               else recorder.records)
    if not records:
        raise ValueError("no records to histogram")
    values = [r.latency.to("ns") for r in records]
    low, high = min(values), max(values)
    if high <= low:
        high = low + 1.0
    hist = Histogram(low, high + 1e-9, bins=bins)
    for v in values:
        hist.add(v)
    return hist
