"""Transaction recording.

Every TLM channel in the library (SHIP, OCP, the bus CAMs) can be handed
a :class:`TransactionRecorder`; it captures one :class:`TransactionRecord`
per completed transaction with begin/end timestamps and free-form
attributes.  The recorder is what the CCATB-accuracy experiment (E2) and
the exploration engine (E3) read their cycle counts and latencies from.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.kernel.simtime import SimTime
from repro.trace.stats import TimeStats


@dataclass
class TransactionRecord:
    """One completed transaction."""

    uid: int
    channel: str
    kind: str               # e.g. "read", "write", "send", "request"
    initiator: str
    target: str
    begin: SimTime
    end: SimTime
    nbytes: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def latency(self) -> SimTime:
        """End minus begin."""
        return self.end - self.begin

    def as_row(self) -> Dict[str, object]:
        """Flat dict row for tables and CSV."""
        row = {
            "uid": self.uid,
            "channel": self.channel,
            "kind": self.kind,
            "initiator": self.initiator,
            "target": self.target,
            "begin_ns": self.begin.to("ns"),
            "end_ns": self.end.to("ns"),
            "latency_ns": self.latency.to("ns"),
            "nbytes": self.nbytes,
        }
        row.update(self.attributes)
        return row


class TransactionRecorder:
    """Collects transaction records and derives summary statistics."""

    def __init__(self, keep_records: bool = True):
        self.keep_records = keep_records
        self.records: List[TransactionRecord] = []
        self.count = 0
        self.total_bytes = 0
        self._uid = itertools.count()
        self.latency_by_kind: Dict[str, TimeStats] = {}
        self._listeners: List[Callable[[TransactionRecord], None]] = []

    def record(
        self,
        channel: str,
        kind: str,
        initiator: str,
        target: str,
        begin: SimTime,
        end: SimTime,
        nbytes: int = 0,
        **attributes,
    ) -> TransactionRecord:
        """Store one completed transaction; returns the record."""
        rec = TransactionRecord(
            uid=next(self._uid),
            channel=channel,
            kind=kind,
            initiator=initiator,
            target=target,
            begin=begin,
            end=end,
            nbytes=nbytes,
            attributes=attributes,
        )
        self.count += 1
        self.total_bytes += nbytes
        self.latency_by_kind.setdefault(kind, TimeStats()).add(rec.latency)
        if self.keep_records:
            self.records.append(rec)
        for listener in self._listeners:
            listener(rec)
        return rec

    def subscribe(self, listener: Callable[[TransactionRecord], None]) -> None:
        """Call ``listener`` for every new record."""
        self._listeners.append(listener)

    # -- queries -----------------------------------------------------------------

    def by_kind(self, kind: str) -> List[TransactionRecord]:
        """Kept records of the given kind."""
        return [r for r in self.records if r.kind == kind]

    def by_initiator(self, initiator: str) -> List[TransactionRecord]:
        """Kept records from the given initiator."""
        return [r for r in self.records if r.initiator == initiator]

    def latency_stats(self, kind: Optional[str] = None) -> TimeStats:
        """Latency statistics, optionally restricted to one kind."""
        if kind is not None:
            return self.latency_by_kind.get(kind, TimeStats())
        merged = TimeStats()
        for rec in self.records:
            merged.add(rec.latency)
        return merged

    def to_csv(self, path: str) -> None:
        """Dump all records to a CSV file for offline analysis."""
        if not self.records:
            with open(path, "w", newline="", encoding="utf-8") as fh:
                fh.write("")
            return
        keys = list(self.records[0].as_row().keys())
        for rec in self.records:
            for key in rec.as_row():
                if key not in keys:
                    keys.append(key)
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=keys, restval="")
            writer.writeheader()
            for rec in self.records:
                writer.writerow(rec.as_row())

    def clear(self) -> None:
        """Drop records and reset statistics."""
        self.records.clear()
        self.count = 0
        self.total_bytes = 0
        self.latency_by_kind.clear()


def latency_histogram(recorder: TransactionRecorder, bins: int = 20,
                      kind: Optional[str] = None):
    """Build a latency :class:`~repro.trace.stats.Histogram` (ns) from a
    recorder's kept records.

    The bin range spans the observed min/max; requires
    ``keep_records=True`` and at least one record.
    """
    from repro.trace.stats import Histogram

    records = (recorder.by_kind(kind) if kind is not None
               else recorder.records)
    if not records:
        raise ValueError("no records to histogram")
    values = [r.latency.to("ns") for r in records]
    low, high = min(values), max(values)
    if high <= low:
        high = low + 1.0
    hist = Histogram(low, high + 1e-9, bins=bins)
    for v in values:
        hist.add(v)
    return hist
