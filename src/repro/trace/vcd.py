"""VCD (Value Change Dump) waveform tracing for signals.

Produces IEEE 1364 VCD files viewable in GTKWave.  Signals are traced by
subscribing to their change observers, so tracing adds zero overhead to
untraced signals.  Boolean signals dump as 1-bit wires, integers as
vectors of a declared width, everything else as real/string values.

Example::

    tracer = VcdTracer("wave.vcd", ctx)
    tracer.trace(clk, "clk")
    tracer.trace(addr_sig, "addr", width=32)
    ctx.run(us(10))
    tracer.close()
"""

from __future__ import annotations

from typing import Dict, Optional, TextIO, Union

from repro.kernel.context import SimContext
from repro.kernel.signal import Signal

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _make_identifier(index: int) -> str:
    """Compact VCD identifier for the index-th traced signal."""
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


class _TracedVar:
    __slots__ = ("signal", "identifier", "width", "kind", "label")

    def __init__(
        self,
        signal: Signal,
        identifier: str,
        width: int,
        kind: str,
        label: str,
    ):
        self.signal = signal
        self.identifier = identifier
        self.width = width
        self.kind = kind  # "wire" (bit/vector) or "real"
        self.label = label


class VcdTracer:
    """Writes signal changes to a VCD file (or any text stream)."""

    def __init__(
        self,
        target: Union[str, TextIO],
        ctx: SimContext,
        timescale: str = "1ps",
    ):
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="ascii")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.ctx = ctx
        self.timescale = timescale
        self._vars: Dict[int, _TracedVar] = {}
        self._header_written = False
        self._closed = False
        self._last_dump_fs: Optional[int] = None
        self._fs_per_tick = self._parse_timescale(timescale)

    @staticmethod
    def _parse_timescale(timescale: str) -> int:
        units = {"fs": 1, "ps": 10**3, "ns": 10**6, "us": 10**9}
        for unit, scale in units.items():
            if timescale.endswith(unit):
                magnitude = int(timescale[: -len(unit)].strip() or "1")
                return magnitude * scale
        raise ValueError(f"unsupported VCD timescale {timescale!r}")

    # -- registration ----------------------------------------------------------

    def trace(
        self,
        signal: Signal,
        name: Optional[str] = None,
        width: int = 1,
    ) -> None:
        """Start tracing ``signal``; must be called before the header is
        emitted (i.e. before the first value change is recorded)."""
        if self._header_written:
            raise RuntimeError("cannot add signals after tracing started")
        if id(signal) in self._vars:
            return
        value = signal.read()
        if isinstance(value, bool) or (isinstance(value, int) and width == 1
                                       and value in (0, 1)):
            kind = "wire"
        elif isinstance(value, int):
            kind = "wire"
            width = max(width, value.bit_length(), 1)
        elif isinstance(value, float):
            kind = "real"
        else:
            kind = "real"  # dumped via repr as $dumpvars strings are rare
        identifier = _make_identifier(len(self._vars))
        label = name or signal.full_name.replace(".", "_")
        var = _TracedVar(signal, identifier, width, kind, label)
        self._vars[id(signal)] = var
        signal.on_change(self._on_change)

    # -- dumping ---------------------------------------------------------------

    def _write_header(self) -> None:
        out = self._stream
        out.write("$date\n    (repro simulation)\n$end\n")
        out.write("$version\n    repro VcdTracer\n$end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write("$scope module top $end\n")
        for var in self._vars.values():
            vcd_type = "real" if var.kind == "real" else "wire"
            width = 64 if var.kind == "real" else var.width
            out.write(
                f"$var {vcd_type} {width} {var.identifier} "
                f"{var.label} $end\n"
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write("$dumpvars\n")
        for var in self._vars.values():
            self._dump_value(var, var.signal.read())
        out.write("$end\n")
        self._header_written = True
        # Sentinel: the first recorded change always gets a timestamp,
        # even when it happens at the same instant the header is written.
        self._last_dump_fs = -1

    def _on_change(self, signal: Signal, old, new) -> None:
        if not self._header_written:
            self._write_header()
        now_fs = self.ctx.now.femtoseconds
        if now_fs != self._last_dump_fs:
            self._stream.write(f"#{now_fs // self._fs_per_tick}\n")
            self._last_dump_fs = now_fs
        self._dump_value(self._vars[id(signal)], new)

    def _dump_value(self, var: _TracedVar, value) -> None:
        out = self._stream
        if var.kind == "real":
            try:
                out.write(f"r{float(value):.16g} {var.identifier}\n")
            except (TypeError, ValueError):
                out.write(f"r0 {var.identifier}\n")
            return
        if var.width == 1:
            bit = "1" if value else "0"
            out.write(f"{bit}{var.identifier}\n")
        else:
            intval = int(value) & ((1 << var.width) - 1)
            out.write(f"b{intval:b} {var.identifier}\n")

    def flush(self) -> None:
        """Write the header if needed and flush the stream."""
        if not self._header_written and self._vars:
            self._write_header()
        self._stream.flush()

    def close(self) -> None:
        """Finalize and close (if this tracer opened the file).

        Stamps a final timestamp at the current simulation time so the
        waveform visibly spans to the end of the run, then flushes;
        guaranteed to run exactly once (idempotent), including via the
        context-manager exit on an exception path.
        """
        if self._closed:
            return
        self._closed = True
        if self._header_written:
            now_fs = self.ctx.now.femtoseconds
            if self._last_dump_fs is not None and now_fs > self._last_dump_fs:
                self._stream.write(f"#{now_fs // self._fs_per_tick}\n")
                self._last_dump_fs = now_fs
        self.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "VcdTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Alias: the writer-flavoured name used in docs and by callers that
#: treat the tracer as a generic context-managed file writer.
VcdWriter = VcdTracer
