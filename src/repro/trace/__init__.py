"""``repro.trace`` — waveform tracing, transaction recording, statistics.

* :class:`VcdTracer` dumps signal changes to IEEE 1364 VCD files.
* :class:`TransactionRecorder` captures completed TLM transactions with
  timestamps, sizes and attributes; the exploration and accuracy
  experiments are built on its output.
* :mod:`repro.trace.stats` provides streaming statistics (Welford mean /
  variance, histograms, throughput meters).
"""

from repro.trace.stats import (
    Histogram,
    OnlineStats,
    ThroughputMeter,
    TimeStats,
    geometric_mean,
)
from repro.trace.transaction import (
    TransactionRecord,
    TransactionRecorder,
    latency_histogram,
)
from repro.trace.vcd import VcdTracer, VcdWriter

__all__ = [
    "Histogram",
    "OnlineStats",
    "ThroughputMeter",
    "TimeStats",
    "TransactionRecord",
    "TransactionRecorder",
    "VcdTracer",
    "VcdWriter",
    "geometric_mean",
    "latency_histogram",
]
