"""Deterministic fault plans.

A :class:`FaultPlan` is the single source of randomness and the single
log for a fault campaign: every injector draws from ``plan.rng`` and
reports every injected fault through :meth:`FaultPlan.record`.  Because
the simulator itself is deterministic, one seed fixes the complete
sequence of RNG draws and therefore the complete fault log — rerunning
the same model with the same seed reproduces every drop, flip and error
bit-for-bit (compare :meth:`FaultPlan.digest`).

:class:`FaultRule` is the shared "when does this fault fire?" predicate:
a probability per candidate event, a deterministic every-nth counter, an
optional simulated-time window, an optional address range and an
optional fire budget.  Injectors own one rule per fault kind.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.kernel.simtime import SimTime


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: what, when, and a human-readable detail."""

    seq: int
    now_fs: int
    kind: str
    detail: str

    def line(self) -> str:
        """Stable one-line rendering (used for logs and digests)."""
        return f"{self.seq:04d} @{self.now_fs}fs {self.kind}: {self.detail}"


@dataclass
class FaultRule:
    """Predicate deciding whether a candidate event becomes a fault.

    Parameters
    ----------
    probability:
        Chance per candidate event, drawn from the plan's RNG.
    every_nth:
        Deterministic alternative: fire on every nth candidate
        (takes precedence over ``probability``).
    after / before:
        Simulated-time window; outside it the rule never fires
        (``before`` is exclusive).
    addr_range:
        ``(lo, hi)`` half-open byte range; candidates carrying an
        address outside it are ignored.
    max_fires:
        Fire budget; the rule goes quiet once exhausted.
    """

    probability: float = 0.0
    every_nth: Optional[int] = None
    after: Optional[SimTime] = None
    before: Optional[SimTime] = None
    addr_range: Optional[Tuple[int, int]] = None
    max_fires: Optional[int] = None
    #: candidates seen (drives ``every_nth``)
    seen: int = field(default=0, init=False)
    #: times this rule fired
    fires: int = field(default=0, init=False)

    def in_window(self, now_fs: int) -> bool:
        """True when ``now_fs`` is inside the rule's time window."""
        if self.after is not None and now_fs < self.after._fs:
            return False
        if self.before is not None and now_fs >= self.before._fs:
            return False
        return True

    def __snapshot__(self) -> dict:
        return {"seen": self.seen, "fires": self.fires}

    def __restore__(self, state: dict) -> None:
        self.seen = state["seen"]
        self.fires = state["fires"]

    def matches(self, rng: Random, now_fs: int,
                addr: Optional[int] = None) -> bool:
        """Decide one candidate event; counts it and may consume RNG."""
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if not self.in_window(now_fs):
            return False
        if addr is not None and self.addr_range is not None:
            lo, hi = self.addr_range
            if not (lo <= addr < hi):
                return False
        self.seen += 1
        if self.every_nth is not None:
            hit = self.seen % self.every_nth == 0
        elif self.probability > 0.0:
            hit = rng.random() < self.probability
        else:
            hit = False
        if hit:
            self.fires += 1
        return hit


class FaultPlan:
    """Seeded randomness plus the append-only log of injected faults.

    Parameters
    ----------
    seed:
        Seeds the plan's private :class:`random.Random`; with the
        deterministic kernel this fixes the whole campaign.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; every recorded
        fault also increments a ``fault.<kind>`` counter there.
    """

    def __init__(self, seed: int = 1, metrics=None):
        self.seed = seed
        self.rng = Random(seed)
        self.metrics = metrics
        self.log: List[FaultRecord] = []
        self._counters: Dict[str, object] = {}

    def record(self, kind: str, now_fs: int, detail: str) -> FaultRecord:
        """Append one injected fault to the log (and metrics, if any)."""
        rec = FaultRecord(len(self.log), now_fs, kind, detail)
        self.log.append(rec)
        if self.metrics is not None:
            name = f"fault.{kind}"
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = self.metrics.counter(name)
            counter.inc()
        return rec

    # -- checkpoint/restore protocol (see repro.snapshot) -------------------

    def __snapshot__(self) -> dict:
        version, internal, gauss = self.rng.getstate()
        return {
            "seed": self.seed,
            "rng": [version, list(internal), gauss],
            "log": [
                [rec.seq, rec.now_fs, rec.kind, rec.detail]
                for rec in self.log
            ],
        }

    def __restore__(self, state: dict) -> None:
        if state["seed"] != self.seed:
            raise ValueError(
                f"fault plan seed mismatch: snapshot has {state['seed']}, "
                f"this plan has {self.seed}"
            )
        version, internal, gauss = state["rng"]
        self.rng.setstate((version, tuple(internal), gauss))
        self.log = [
            FaultRecord(seq, now_fs, kind, detail)
            for seq, now_fs, kind, detail in state["log"]
        ]

    def count(self, kind: Optional[str] = None) -> int:
        """Number of injected faults, optionally of one kind."""
        if kind is None:
            return len(self.log)
        return sum(1 for rec in self.log if rec.kind == kind)

    def counts_by_kind(self) -> Dict[str, int]:
        """``{kind: count}`` over the whole log, sorted by kind."""
        counts: Dict[str, int] = {}
        for rec in self.log:
            counts[rec.kind] = counts.get(rec.kind, 0) + 1
        return dict(sorted(counts.items()))

    def summary_lines(self) -> List[str]:
        """Stable multi-line summary: header, per-kind counts, full log."""
        lines = [
            f"fault plan seed={self.seed}: {len(self.log)} fault(s)",
        ]
        for kind, count in self.counts_by_kind().items():
            lines.append(f"  {kind}: {count}")
        for rec in self.log:
            lines.append("  " + rec.line())
        return lines

    def summary(self) -> str:
        """The summary lines joined (what golden files store)."""
        return "\n".join(self.summary_lines())

    def digest(self) -> str:
        """SHA-256 of the summary — one value to compare across runs."""
        return hashlib.sha256(self.summary().encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={len(self.log)})"
