"""A seeded, fully deterministic multi-layer fault campaign.

One :func:`run_campaign` call builds a small system exercising every
injector in the package — a CCATB bus with a forced-error/decode-miss
injector and a faulty slave, retrying masters, a memory bit-flip
injector, and a SHIP link with drop/corrupt faults under timeout+retry —
runs it to completion, and renders a stable text summary.

Because every random decision flows through one seeded
:class:`~repro.faults.plan.FaultPlan` and the kernel is deterministic,
the summary (and its SHA-256 digest) is bit-identical for a given seed
across runs and Python versions.  CI pins the seed-1 summary as a golden
file (``benchmarks/golden_fault_campaign.txt``); run this module as a
script to check or regenerate it::

    PYTHONPATH=src python -m repro.faults.campaign --check benchmarks/golden_fault_campaign.txt
    PYTHONPATH=src python -m repro.faults.campaign --write benchmarks/golden_fault_campaign.txt
"""

from __future__ import annotations

from typing import Generator, List

from repro.kernel.context import SimContext
from repro.kernel.module import Module
from repro.kernel.simtime import ns, us
from repro.cam.bus import GenericBus
from repro.cam.memory import MemorySlave
from repro.obs.metrics import MetricsRegistry
from repro.ocp.types import OcpCmd, OcpRequest
from repro.ship.channel import ShipChannel, ShipTiming
from repro.ship.ports import ShipPort
from repro.ship.serializable import ShipInt
from repro.faults.bus import BusFaultInjector, FaultySlave
from repro.faults.link import LinkFaultInjector
from repro.faults.memory import MemoryFaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.retry import (
    RetryExhaustedError,
    RetryPolicy,
    RetryingMaster,
    retry_call,
)


class _BusDriver(Module):
    """Issues alternating word writes/reads through a retrying master."""

    def __init__(self, name, parent, master: RetryingMaster,
                 base: int, transactions: int):
        super().__init__(name, parent)
        self.master = master
        self.base = base
        self.transactions = transactions
        self.ok = 0
        self.exhausted = 0
        self.add_thread(self._drive)

    def _drive(self) -> Generator:
        for i in range(self.transactions):
            addr = self.base + (i % 16) * 4
            if i % 2 == 0:
                request = OcpRequest(OcpCmd.WR, addr, data=[i])
            else:
                request = OcpRequest(OcpCmd.RD, addr)
            try:
                yield from self.master.transport(request)
                self.ok += 1
            except RetryExhaustedError:
                self.exhausted += 1
            yield ns(40)


class _ShipProducer(Module):
    """Requests ``count`` echoes over a lossy link, with timeout+retry."""

    def __init__(self, name, parent, count: int, policy: RetryPolicy):
        super().__init__(name, parent)
        self.port = ShipPort("port", self)
        self.count = count
        self.policy = policy
        self.ok = 0
        self.mismatches = 0
        self.exhausted = 0
        self.add_thread(self._produce)

    def _produce(self) -> Generator:
        for i in range(self.count):
            try:
                reply = yield from retry_call(
                    lambda: self.port.request(ShipInt(i), timeout=us(1)),
                    self.policy,
                    what=f"{self.full_name} request {i}",
                )
            except RetryExhaustedError:
                self.exhausted += 1
                continue
            if reply.value == i + 1:
                self.ok += 1
            else:
                self.mismatches += 1


class _ShipEcho(Module):
    """Replies value+1 to every request, forever."""

    def __init__(self, name, parent):
        super().__init__(name, parent)
        self.port = ShipPort("port", self)
        self.served = 0
        self.add_thread(self._serve)

    def _serve(self) -> Generator:
        while True:
            msg = yield from self.port.recv()
            yield from self.port.reply(ShipInt(msg.value + 1))
            self.served += 1


class CampaignResult:
    """Everything a campaign run produced, renderable as stable text."""

    def __init__(self, seed: int, plan: FaultPlan,
                 metrics: MetricsRegistry, lines: List[str]):
        self.seed = seed
        self.plan = plan
        self.metrics = metrics
        self.lines = lines

    def summary(self) -> str:
        """The full stable text summary (what the golden file stores)."""
        return "\n".join(self.lines) + "\n"


def run_campaign(seed: int = 1, transactions: int = 40,
                 messages: int = 24) -> CampaignResult:
    """Run the standard multi-layer fault campaign for one seed."""
    ctx = SimContext(name=f"fault_campaign_{seed}")
    top = Module("top", ctx=ctx)
    metrics = MetricsRegistry()
    plan = FaultPlan(seed=seed, metrics=metrics)

    bus = GenericBus("bus", top, clock_period=ns(10), metrics=metrics)
    bus.fault_injector = BusFaultInjector(
        plan,
        error=FaultRule(probability=0.10),
        decode=FaultRule(every_nth=17),
    )
    mem = MemorySlave("mem", top, size=0x1000)
    bus.attach_slave(mem, base=0x0000, size=0x1000)
    flaky_mem = MemorySlave("flaky_mem", top, size=0x1000)
    flaky = FaultySlave(
        "flaky", top, target=flaky_mem, plan=plan,
        rule=FaultRule(every_nth=5), mode="error",
    )
    bus.attach_slave(flaky, base=0x2000, size=0x1000, localize=True)

    policy = RetryPolicy(max_attempts=4, backoff=ns(80), exponential=True)
    drivers = []
    for i, base in enumerate((0x0000, 0x2000)):
        socket = bus.master_socket(f"m{i}", priority=i)
        master = RetryingMaster(
            f"retry{i}", top, socket=socket, policy=policy,
            timeout=us(4), plan=plan,
        )
        drivers.append(
            _BusDriver(f"drv{i}", top, master, base, transactions)
        )

    MemoryFaultInjector(
        "seu", top, memory=mem, plan=plan, period=us(3), max_flips=5,
    )

    link = ShipChannel(
        "link", top,
        timing=ShipTiming(base_latency=ns(20), per_byte=ns(1)),
    )
    link.fault_injector = LinkFaultInjector(
        plan,
        drop=FaultRule(every_nth=7),
        corrupt=FaultRule(every_nth=5),
        delay=FaultRule(every_nth=11),
        extra_latency=ns(200),
    )
    producer = _ShipProducer("producer", top, messages, policy)
    echo = _ShipEcho("echo", top)
    producer.port.bind(link)
    echo.port.bind(link)

    ctx.run(us(10_000))

    lines = [f"fault campaign seed={seed} finished at {ctx.now}"]
    for drv in drivers:
        lines.append(
            f"bus {drv.name}: ok={drv.ok} exhausted={drv.exhausted} "
            f"retries={drv.master.retries} "
            f"recoveries={drv.master.recoveries}"
        )
    lines.append(
        f"ship producer: ok={producer.ok} "
        f"mismatches={producer.mismatches} "
        f"exhausted={producer.exhausted} served={echo.served} "
        f"replies_dropped={link.replies_dropped}"
    )
    lines.extend(plan.summary_lines())
    snapshot = metrics.snapshot()
    for name in sorted(snapshot):
        if name.startswith("fault."):
            lines.append(f"metric {name} = {snapshot[name]['value']}")
    lines.append(f"digest {plan.digest()}")
    return CampaignResult(seed, plan, metrics, lines)


#: Bus-error pressures the golden fault-rate sweep visits, in order.
SWEEP_RATES = (0.0, 0.1, 0.25)


def sweep_points(seed: int = 1) -> List[object]:
    """The fault-rate sweep's design points, one per error rate.

    A fixed two-master PLB point crossed with rising bus-error
    pressure — fault rates swept through the same
    :class:`~repro.sweep.SweepEngine` as any architecture parameter.
    """
    from repro.explore.runner import FaultSpec
    from repro.explore.space import ArchitectureConfig
    from repro.explore.workload import MasterTrafficSpec
    from repro.sweep.points import SweepPoint

    config = ArchitectureConfig(fabric="plb")
    specs = (
        MasterTrafficSpec(name="m0", pattern="stream", base=0x0000,
                          size=4096, transactions=30),
        MasterTrafficSpec(name="m1", pattern="random", base=0x2000,
                          size=4096, transactions=30, priority=1),
    )
    return [
        SweepPoint(
            config=config, specs=specs, workload="sweep",
            max_sim_time=us(500), seed=seed,
            faults=FaultSpec(seed=seed, bus_error_rate=rate,
                             mem_flip_period=us(20)),
        )
        for rate in SWEEP_RATES
    ]


def run_sweep(seed: int = 1, engine=None) -> List[str]:
    """Seeded fault-rate sweep through the parallel sweep engine.

    Sweeps bus-error pressure over a fixed two-master PLB design point
    via :class:`repro.sweep.SweepEngine` (the one sweep code path in
    the repo), proving fault pressure can be swept like any other
    architecture parameter — and that each point's fault log is
    reproducible regardless of worker count or caching, because the
    engine canonicalizes every result through the same serialization
    round-trip.  Returns stable text lines (pinned by
    ``benchmarks/golden_fault_sweep.txt``).

    ``engine`` defaults to an in-process, cache-less engine so the
    golden check needs no pool or scratch directory; passing one with
    workers or a store must produce byte-identical lines.  Callers who
    sweep repeatedly (multiple seeds, resume loops) should pass one
    engine and keep it: its warm worker pool persists across
    ``run_sweep`` calls, so only the first sweep pays process startup.
    """
    from repro.sweep.engine import SweepEngine

    if engine is None:
        engine = SweepEngine(workers=1)
    points = sweep_points(seed=seed)
    lines = [f"fault sweep seed={seed} "
             f"fabric={points[0].config.fabric}"]
    for rate, outcome in zip(SWEEP_RATES, engine.run(points)):
        result = outcome.result
        errors = sum(m.errors for m in result.masters)
        completed = sum(m.completed for m in result.masters)
        counts = ", ".join(
            f"{kind}={n}" for kind, n in
            sorted(result.fault_plan.counts_by_kind().items())
        )
        lines.append(
            f"rate={rate}: completed={completed} master_errors={errors} "
            f"faults[{counts}] digest={result.fault_plan.digest()}"
        )
    return lines


def main(argv=None) -> int:
    """CLI: print, write, or check the campaign summary."""
    import argparse

    parser = argparse.ArgumentParser(
        description="run the deterministic fault campaign"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the explore-based fault-rate sweep instead of the "
             "multi-layer campaign",
    )
    parser.add_argument(
        "--workers", default=None,
        help="with --sweep: worker processes for the sweep engine "
             "(a count or 'auto'; default: in-process). All sweep "
             "phases share one engine and thus one warm pool.",
    )
    parser.add_argument(
        "--write", metavar="PATH",
        help="write the summary to PATH (regenerate the golden file)",
    )
    parser.add_argument(
        "--check", metavar="PATH",
        help="compare the summary against PATH; exit 1 on mismatch",
    )
    args = parser.parse_args(argv)
    if args.sweep:
        from repro.sweep.engine import SweepEngine

        # One engine for the whole invocation: every sweep phase below
        # dispatches onto the same warm pool (golden output is
        # byte-identical regardless of worker count).
        with SweepEngine(workers=args.workers) as engine:
            lines = run_sweep(seed=args.seed, engine=engine)
        text = "\n".join(lines) + "\n"
        result = None
    else:
        result = run_campaign(seed=args.seed)
        text = result.summary()
    if args.write:
        with open(args.write, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.write}")
        return 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            golden = fh.read()
        if golden != text:
            print("fault campaign summary DIFFERS from golden file:")
            import difflib

            for line in difflib.unified_diff(
                golden.splitlines(), text.splitlines(),
                fromfile=args.check, tofile="current", lineterm="",
            ):
                print(line)
            return 1
        detail = ("sweep" if result is None
                  else f"{result.plan.count()} faults")
        print(f"fault campaign matches {args.check} "
              f"({detail}, seed {args.seed})")
        return 0
    print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
