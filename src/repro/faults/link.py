"""SHIP link faults: message drop, payload corruption, added latency.

A :class:`LinkFaultInjector` attaches to a
:class:`~repro.ship.channel.ShipChannel` via its ``fault_injector``
attribute.  The channel consults :meth:`on_message` once per transmitted
message (``send``/``request``/``reply`` payloads all pass through the
same transmit path) — the fault-free channel pays a single attribute
test.

Fault semantics:

* **drop** — the sender pays the full wire latency and its accounting is
  updated, but the message never reaches the peer's queue.  A dropped
  ``request`` therefore hangs its master unless it used a ``timeout`` or
  a watchdog is armed — which is exactly the failure mode the resilience
  layer exists to surface.
* **corrupt** — one payload bit is flipped *after* the 6-byte frame
  header (``tag | length``), so the receiver still decodes a value — the
  wrong one.  Skipped for zero-copy channels (there are no bytes to
  flip) and empty payloads.
* **delay** — adds ``extra_latency`` to the modeled transfer time.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.faults.plan import FaultPlan, FaultRule

#: bytes of frame header (tag + length) a corruption must never touch
_FRAME_HEADER_BYTES = 6


class LinkFaultInjector:
    """Per-message fault decisions for one SHIP channel.

    Parameters
    ----------
    plan:
        The campaign's :class:`FaultPlan` (RNG + log).
    drop / corrupt / delay:
        Optional :class:`FaultRule` per fault kind; None disables it.
    extra_latency:
        Latency added when the ``delay`` rule fires.
    """

    def __init__(
        self,
        plan: FaultPlan,
        drop: Optional[FaultRule] = None,
        corrupt: Optional[FaultRule] = None,
        delay: Optional[FaultRule] = None,
        extra_latency: SimTime = ZERO_TIME,
    ):
        self.plan = plan
        self.drop = drop
        self.corrupt = corrupt
        self.delay = delay
        self.extra_latency = extra_latency
        self.messages_seen = 0

    def on_message(self, channel, end, kind: str,
                   data: Optional[bytes],
                   nbytes: int) -> Tuple[bool, Optional[bytes], int]:
        """Channel hook: decide this message's fate.

        Returns ``(deliver, data, extra_latency_fs)``.
        """
        self.messages_seen += 1
        now_fs = channel.ctx._now_fs
        rng = self.plan.rng
        extra_fs = 0
        if (self.delay is not None
                and self.delay.matches(rng, now_fs)):
            extra_fs = self.extra_latency._fs
            self.plan.record(
                "link.delay", now_fs,
                f"{channel.full_name}: +{self.extra_latency} on {kind} "
                f"from end {end.value}",
            )
        if self.drop is not None and self.drop.matches(rng, now_fs):
            self.plan.record(
                "link.drop", now_fs,
                f"{channel.full_name}: dropped {kind} ({nbytes}B) "
                f"from end {end.value}",
            )
            return False, data, extra_fs
        if (self.corrupt is not None
                and data is not None
                and len(data) > _FRAME_HEADER_BYTES
                and self.corrupt.matches(rng, now_fs)):
            index = _FRAME_HEADER_BYTES + rng.randrange(
                len(data) - _FRAME_HEADER_BYTES
            )
            bit = rng.randrange(8)
            corrupted = bytearray(data)
            corrupted[index] ^= 1 << bit
            data = bytes(corrupted)
            self.plan.record(
                "link.corrupt", now_fs,
                f"{channel.full_name}: flipped bit {bit} of byte {index} "
                f"in {kind} from end {end.value}",
            )
        return True, data, extra_fs

    def on_reply_dropped(self, channel, end, txn_id: int) -> None:
        """Channel hook: a reply arrived after its requester timed out."""
        self.plan.record(
            "link.reply_dropped", channel.ctx._now_fs,
            f"{channel.full_name}: late reply {txn_id} from end "
            f"{end.value} discarded (requester timed out)",
        )
