"""Retry policies and the retrying bus master.

:class:`RetryPolicy` bounds attempts and spaces them with fixed or
exponential backoff in *simulated* time.  :func:`retry_call` retries any
blocking generator operation on :class:`~repro.kernel.errors
.SimTimeoutError`; :class:`RetryingMaster` wraps a bus master socket
(any :class:`~repro.ocp.tl.OcpTargetIf`) and retries ERR responses and
per-attempt timeouts, surfacing exhaustion as
:class:`RetryExhaustedError` instead of silently returning the last
failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.kernel.errors import SimTimeoutError, SimulationError
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime, ZERO_TIME
from repro.kernel.sync import with_timeout
from repro.ocp.tl import OcpTargetIf
from repro.ocp.types import OcpRequest, OcpResponse
from repro.faults.plan import FaultPlan


class RetryExhaustedError(SimulationError):
    """Every attempt a :class:`RetryPolicy` allowed has failed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff schedule (in simulated time).

    ``delay_for(n)`` is the pause after failed attempt ``n`` (1-based):
    ``backoff`` fixed, or ``backoff * 2**(n-1)`` with ``exponential``,
    clamped to ``max_backoff`` when given.
    """

    max_attempts: int = 3
    backoff: SimTime = ZERO_TIME
    exponential: bool = False
    max_backoff: Optional[SimTime] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise SimulationError("retry policy: max_attempts must be >= 1")

    def delay_for(self, attempt: int) -> SimTime:
        """Backoff delay after failed attempt ``attempt`` (1-based)."""
        fs = self.backoff._fs
        if self.exponential and attempt > 1:
            fs *= 2 ** (attempt - 1)
        if self.max_backoff is not None and fs > self.max_backoff._fs:
            fs = self.max_backoff._fs
        return SimTime._from_fs(fs)

    @classmethod
    def from_seconds(cls, max_attempts: int = 3, backoff_s: float = 0.0,
                     exponential: bool = False,
                     max_backoff_s: Optional[float] = None) -> "RetryPolicy":
        """Build a policy whose backoff fields encode *host* seconds.

        The sweep runtime's :class:`repro.sweep.recovery.RecoveryPolicy`
        schedules worker respawns with the exact same fixed/exponential/
        clamped schedule simulated masters use — by mapping wall-clock
        seconds onto :class:`SimTime` and reading them back with
        :meth:`delay_s`, rather than duplicating the arithmetic.
        """
        return cls(
            max_attempts=max_attempts,
            backoff=SimTime.from_value(backoff_s, "s"),
            exponential=exponential,
            max_backoff=(None if max_backoff_s is None
                         else SimTime.from_value(max_backoff_s, "s")),
        )

    def delay_s(self, attempt: int) -> float:
        """:meth:`delay_for` read back as host seconds (float)."""
        return self.delay_for(attempt).to("s")


def retry_call(factory: Callable[[], Generator], policy: RetryPolicy,
               what: str = "operation") -> Generator:
    """Run ``factory()`` (a fresh blocking generator per attempt),
    retrying on :class:`SimTimeoutError` with the policy's backoff::

        reply = yield from retry_call(
            lambda: port.request(msg, timeout=us(5)), policy)

    Raises :class:`RetryExhaustedError` once attempts are exhausted,
    chaining the last timeout.
    """
    last: Optional[SimTimeoutError] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return (yield from factory())
        except SimTimeoutError as exc:
            last = exc
        if attempt < policy.max_attempts:
            delay = policy.delay_for(attempt)
            if delay._fs:
                yield delay
    raise RetryExhaustedError(
        f"{what}: all {policy.max_attempts} attempt(s) failed "
        f"(last: {last})"
    ) from last


class RetryingMaster(SimObject, OcpTargetIf):
    """Bus-socket wrapper retrying ERR responses and timed-out attempts.

    Drop-in :class:`OcpTargetIf`: masters call ``transport`` on it
    exactly as they would on the raw socket.  Each attempt optionally
    runs under a per-attempt ``timeout`` (via
    :func:`~repro.kernel.sync.with_timeout`); failed attempts (ERR
    response or timeout) back off per ``policy`` and retry.  When the
    budget is exhausted :class:`RetryExhaustedError` is raised — an
    exhausted retry is a loud failure, never a quietly returned ERR.

    Attributes
    ----------
    retries / recoveries / exhausted:
        Re-attempts issued, transactions that succeeded after at least
        one retry, and transactions that ran out of attempts.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        socket: OcpTargetIf = None,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[SimTime] = None,
        plan: Optional[FaultPlan] = None,
    ):
        super().__init__(name, parent, ctx)
        if socket is None:
            raise SimulationError(
                f"retrying master {name!r}: socket is required"
            )
        self.socket = socket
        self.policy = policy or RetryPolicy()
        self.timeout = timeout
        self.plan = plan
        self.retries = 0
        self.recoveries = 0
        self.exhausted = 0

    def _attempt(self, request: OcpRequest) -> Generator:
        if self.timeout is None:
            return (yield from self.socket.transport(request))
        return (yield from with_timeout(
            self.ctx, self.socket.transport(request), self.timeout,
            what=f"{self.full_name} transport",
        ))

    def transport(self, request: OcpRequest) -> Generator:
        """One logical transaction, retried across physical attempts."""
        policy = self.policy
        failure = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                response = yield from self._attempt(request)
                if response.ok:
                    if attempt > 1:
                        self.recoveries += 1
                    return response
                failure = "ERR response"
            except SimTimeoutError as exc:
                failure = str(exc)
            if attempt < policy.max_attempts:
                self.retries += 1
                if self.plan is not None:
                    self.plan.record(
                        "retry.attempt", self.ctx._now_fs,
                        f"{self.full_name}: attempt {attempt} failed "
                        f"({failure}); retrying",
                    )
                delay = policy.delay_for(attempt)
                if delay._fs:
                    yield delay
        self.exhausted += 1
        if self.plan is not None:
            self.plan.record(
                "retry.exhausted", self.ctx._now_fs,
                f"{self.full_name}: gave up at addr {request.addr:#x} "
                f"after {policy.max_attempts} attempt(s)",
            )
        raise RetryExhaustedError(
            f"{self.full_name}: transaction at addr {request.addr:#x} "
            f"failed after {policy.max_attempts} attempt(s) "
            f"(last: {failure})"
        )
