"""``repro.faults`` — deterministic fault injection and resilience.

The robustness layer of the library: seedable fault *plans* drive
injectors at every modeling layer, and the matching resilience
primitives (timeouts, retries, watchdogs) turn the injected failures
into diagnosable, recoverable events instead of silent hangs.

* :class:`FaultPlan` / :class:`FaultRule` — one seeded RNG and one
  append-only log per campaign; same seed, same simulator, same faults
  (compare :meth:`FaultPlan.digest`).
* :class:`LinkFaultInjector` — SHIP message drop / payload corruption /
  added latency (``ShipChannel.fault_injector``).
* :class:`BusFaultInjector` — forced ERR, decode misses, arbitration
  starvation (``BusCam.fault_injector``); :class:`FaultySlave` wraps a
  slave with error / stall / no-response behaviour.
* :class:`MemoryFaultInjector` — periodic seeded bit flips in a
  :class:`~repro.cam.memory.MemorySlave`.
* :class:`RetryPolicy` / :func:`retry_call` / :class:`RetryingMaster` —
  bounded retry with fixed or exponential backoff in simulated time;
  exhaustion raises :class:`RetryExhaustedError`.
* :mod:`repro.faults.campaign` — the standard multi-layer campaign CI
  pins as a golden summary.

The kernel-side counterparts live in :mod:`repro.kernel`:
``wait_with_timeout`` / ``with_timeout``, :class:`SimWatchdog`, and
``SimContext.blocked_processes()`` / ``starvation_report()``.
"""

from repro.faults.bus import BusFaultInjector, FaultySlave
from repro.faults.link import LinkFaultInjector
from repro.faults.memory import MemoryFaultInjector
from repro.faults.plan import FaultPlan, FaultRecord, FaultRule
from repro.faults.retry import (
    RetryExhaustedError,
    RetryPolicy,
    RetryingMaster,
    retry_call,
)

__all__ = [
    "BusFaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "FaultySlave",
    "LinkFaultInjector",
    "MemoryFaultInjector",
    "RetryExhaustedError",
    "RetryPolicy",
    "RetryingMaster",
    "retry_call",
]
