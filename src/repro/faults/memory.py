"""Memory faults: seeded bit flips in a :class:`MemorySlave`.

:class:`MemoryFaultInjector` is a small module-like object that runs its
own thread: every ``period`` of simulated time it flips one random bit
of one random word in the target memory, drawing word index and bit
position from the campaign's :class:`~repro.faults.plan.FaultPlan` RNG —
the classic soft-error (SEU) model.  Flips hit the backing store
directly, so a flipped word is only *observed* when something later
reads it; that separation (injection log vs. observed corruption) is
deliberate.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.kernel.errors import SimulationError
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime
from repro.faults.plan import FaultPlan


class MemoryFaultInjector(SimObject):
    """Periodically flips one bit in a memory's backing store.

    Parameters
    ----------
    memory:
        The :class:`~repro.cam.memory.MemorySlave` to disturb.
    plan:
        The campaign's :class:`FaultPlan` (RNG + log).
    period:
        Simulated time between flips (must be positive).
    max_flips:
        Stop after this many flips; None = flip until the run ends.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        memory=None,
        plan: FaultPlan = None,
        period: SimTime = None,
        max_flips: Optional[int] = None,
    ):
        super().__init__(name, parent, ctx)
        if memory is None or plan is None:
            raise SimulationError(
                f"memory fault injector {name!r}: memory and plan are "
                f"required"
            )
        if period is None or period._fs <= 0:
            raise SimulationError(
                f"memory fault injector {name!r}: period must be a "
                f"positive SimTime"
            )
        self.memory = memory
        self.plan = plan
        self.period = period
        self.max_flips = max_flips
        self.flips = 0
        self.ctx.register_thread(self._run, f"{self.full_name}.flip")

    def __snapshot__(self) -> dict:
        return {"flips": self.flips}

    def __restore__(self, state: dict) -> None:
        self.flips = state["flips"]

    def flip_one(self) -> None:
        """Flip one random bit of one random word right now."""
        mem = self.memory
        rng = self.plan.rng
        index = rng.randrange(mem.size // mem.word_bytes)
        bit = rng.randrange(8 * mem.word_bytes)
        old = mem._words.get(index, 0)
        new = (old ^ (1 << bit)) & mem._word_mask
        mem._words[index] = new
        self.flips += 1
        self.plan.record(
            "mem.bit_flip", self.ctx._now_fs,
            f"{mem.full_name}: word {index} bit {bit} "
            f"{old:#x} -> {new:#x}",
        )

    def _run(self) -> Generator:
        while self.max_flips is None or self.flips < self.max_flips:
            yield self.period
            self.flip_one()
