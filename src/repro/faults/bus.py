"""Bus-CAM faults: forced errors, decode misses, starvation, bad slaves.

:class:`BusFaultInjector` attaches to a :class:`~repro.cam.bus.BusCam`
via its ``fault_injector`` attribute; the bus process consults it at
three points of each arbitration round (candidate filtering, forced
error, decode miss).  A fault-free bus pays one attribute test per
round.

:class:`FaultySlave` wraps any slave target and misbehaves on selected
requests: forced ERR, a stall of configurable length, or no response at
all — the last turns into a bus-wide hang (the bus holds the data path
for a transported slave), which a :class:`~repro.kernel.SimWatchdog` or
per-attempt timeout must catch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.kernel.errors import SimulationError
from repro.kernel.event import Event
from repro.kernel.object import SimObject
from repro.kernel.simtime import SimTime
from repro.ocp.types import OcpRequest, OcpResponse
from repro.faults.plan import FaultPlan, FaultRule


class BusFaultInjector:
    """Arbitration-round fault decisions for one bus CAM.

    Parameters
    ----------
    plan:
        The campaign's :class:`FaultPlan`.
    error:
        Rule forcing an ERR completion after the command phase (the
        transaction never reaches its slave).
    decode:
        Rule turning a successful address decode into a miss (ERR on
        the ``decode-error`` channel).
    starve:
        Rule (time window) during which ``starve_masters`` are hidden
        from the arbiter; their requests sit in the pending queue.
    starve_masters:
        Socket names to starve while the ``starve`` window is open.
    """

    def __init__(
        self,
        plan: FaultPlan,
        error: Optional[FaultRule] = None,
        decode: Optional[FaultRule] = None,
        starve: Optional[FaultRule] = None,
        starve_masters: Sequence[str] = (),
    ):
        self.plan = plan
        self.error = error
        self.decode = decode
        self.starve = starve
        self.starve_masters = frozenset(starve_masters)
        self.starved_rounds = 0
        self._starve_window_open = False

    def __snapshot__(self) -> dict:
        state = {
            "starved_rounds": self.starved_rounds,
            "starve_window_open": self._starve_window_open,
        }
        for name in ("error", "decode", "starve"):
            rule = getattr(self, name)
            if rule is not None:
                state[name] = rule.__snapshot__()
        return state

    def __restore__(self, state: dict) -> None:
        self.starved_rounds = state["starved_rounds"]
        self._starve_window_open = state["starve_window_open"]
        for name in ("error", "decode", "starve"):
            rule = getattr(self, name)
            if rule is not None and name in state:
                rule.__restore__(state[name])

    def arbitration_candidates(self, bus, pending: List) -> List:
        """Bus hook: the subset of ``pending`` the arbiter may grant."""
        rule = self.starve
        if rule is None or not self.starve_masters:
            return pending
        now_fs = bus.ctx._now_fs
        if not rule.in_window(now_fs):
            self._starve_window_open = False
            return pending
        kept = [t for t in pending if t.master not in self.starve_masters]
        if len(kept) != len(pending):
            self.starved_rounds += 1
            if not self._starve_window_open:
                self._starve_window_open = True
                victims = sorted(
                    t.master for t in pending
                    if t.master in self.starve_masters
                )
                self.plan.record(
                    "bus.starvation", now_fs,
                    f"{bus.full_name}: starving {', '.join(victims)}",
                )
        return kept

    def force_error(self, bus, request: OcpRequest) -> bool:
        """Bus hook: complete this granted request with ERR?"""
        if self.error is None:
            return False
        if self.error.matches(self.plan.rng, bus.ctx._now_fs,
                              addr=request.addr):
            self.plan.record(
                "bus.error", bus.ctx._now_fs,
                f"{bus.full_name}: forced ERR for "
                f"{request.master_id or 'master'} at "
                f"addr {request.addr:#x}",
            )
            return True
        return False

    def decode_miss(self, bus, request: OcpRequest) -> bool:
        """Bus hook: pretend address decode failed?"""
        if self.decode is None:
            return False
        if self.decode.matches(self.plan.rng, bus.ctx._now_fs,
                               addr=request.addr):
            self.plan.record(
                "bus.decode_miss", bus.ctx._now_fs,
                f"{bus.full_name}: decode miss injected at "
                f"addr {request.addr:#x}",
            )
            return True
        return False


class FaultySlave(SimObject):
    """A transported slave wrapper that misbehaves on selected requests.

    ``mode`` picks the misbehaviour when ``rule`` matches a request:

    * ``"error"`` — return ERR immediately (well-behaved failure);
    * ``"stall"`` — respond correctly but ``stall`` late;
    * ``"no_response"`` — never respond: the wrapped bus transaction
      (and the whole bus data path) hangs until a timeout or watchdog
      intervenes.

    The wrapper is always a *transported* slave (it implements
    ``transport``, not ``access``), so when mapping it at a non-zero
    base pass ``localize=True`` to :meth:`BusCam.attach_slave` if the
    wrapped target expects region-relative addresses.
    """

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        target=None,
        plan: FaultPlan = None,
        rule: FaultRule = None,
        mode: str = "error",
        stall: Optional[SimTime] = None,
    ):
        super().__init__(name, parent, ctx)
        if target is None or plan is None or rule is None:
            raise SimulationError(
                f"faulty slave {name!r}: target, plan and rule are required"
            )
        if mode not in ("error", "stall", "no_response"):
            raise SimulationError(
                f"faulty slave {name!r}: unknown mode {mode!r}"
            )
        if mode == "stall" and (stall is None or stall._fs <= 0):
            raise SimulationError(
                f"faulty slave {name!r}: stall mode needs a positive "
                f"stall time"
            )
        self.target = target
        self.plan = plan
        self.rule = rule
        self.mode = mode
        self.stall = stall
        self.requests_seen = 0
        self._never = Event(self, f"{self.full_name}.never")

    def wait_states(self, request: OcpRequest) -> int:
        """Advertise the wrapped target's wait states."""
        getter = getattr(self.target, "wait_states", None)
        return getter(request) if getter is not None else 0

    def transport(self, request: OcpRequest):
        """Blocking access; misbehaves when the rule matches."""
        self.requests_seen += 1
        now_fs = self.ctx._now_fs
        if self.rule.matches(self.plan.rng, now_fs, addr=request.addr):
            if self.mode == "error":
                self.plan.record(
                    "slave.error", now_fs,
                    f"{self.full_name}: forced ERR at "
                    f"addr {request.addr:#x}",
                )
                return OcpResponse.error()
            if self.mode == "stall":
                self.plan.record(
                    "slave.stall", now_fs,
                    f"{self.full_name}: stalling {self.stall} at "
                    f"addr {request.addr:#x}",
                )
                yield self.stall
            else:  # no_response
                self.plan.record(
                    "slave.no_response", now_fs,
                    f"{self.full_name}: going silent at "
                    f"addr {request.addr:#x}",
                )
                while True:
                    yield self._never
        if hasattr(self.target, "transport"):
            return (yield from self.target.transport(request))
        return self.target.access(request)
