"""Capture and restore of deterministic kernel state.

A snapshot is taken at a *quiescent instant*: the context is not
running a delta cycle, the runnable queue / update queue / delta
notification list are empty, and every process is either terminated or
parked on a wait.  That is exactly the state the kernel is in right
after ``ctx.run(until=...)`` returns with outcome ``"limit"`` (or
``"starved"`` with a limit), which makes "run to the boot horizon,
checkpoint, hand out to workers" a natural idiom.

What gets captured
------------------

* kernel scalars — current time (integer femtoseconds), delta counter,
  last-activity time, the next scheduler sequence number;
* the timed heap — every live entry as ``(when_fs, seq, kind, name)``
  where names refer to events/processes, never object references;
* event trigger state — ``trigger_count`` / ``last_trigger_delta`` and
  the exact order of each event's dynamic waiter list;
* per-process wait records — static / any-of / all-of / timed shape,
  event names in registration order, remaining all-of subset, and the
  pending timeout's heap coordinates;
* per-object state — whatever each kernel object returns from
  ``__snapshot__()`` (JSON-able), keyed by hierarchical name;
* extras — caller-supplied non-SimObject state holders (fault plans,
  metrics registries) implementing the same protocol.

How restore works (replayable segments)
---------------------------------------

Restore targets a **freshly built, structurally identical** context.
After structural elaboration (binding, sensitivity — but *not* the
init-phase process queuing), object state is overlaid, the heap is
rebuilt with its original sequence numbers, and each live thread
process is *re-primed*: a fresh generator is created from the process
body and advanced to its first yield against the restored channel
state.  The contract is that this first yield must have the same
*shape* (static / timed / same event set) as the captured wait; the
captured wait — with its exact event ordering and timer coordinates —
is then adopted, and the fresh wait's own timing is discarded.  An
object may supply a replacement body for the resumed life via
``__restore_thread__(process_name)`` when its original body performs
side effects before the first in-loop yield (``Clock`` does this).

Processes present in the new context but absent from the snapshot
(e.g. measured-phase traffic masters layered on top of a boot
checkpoint) are given the normal init-phase treatment: queued runnable
(or parked on static sensitivity when ``dont_initialize``).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.kernel.context import SimContext
from repro.kernel.event import (
    Event,
    KIND_CANCELLED,
    KIND_EVENT,
    KIND_RESUME,
)
from repro.kernel.process import (
    MethodProcess,
    Process,
    ProcessState,
    ThreadProcess,
    WaitCondition,
    WaitMode,
)
from repro.kernel.simtime import SimTime

SNAPSHOT_SCHEMA = 1

_KIND_NAMES = {KIND_EVENT: "event", KIND_RESUME: "resume"}
_KIND_CODES = {"event": KIND_EVENT, "resume": KIND_RESUME}


class SnapshotError(RuntimeError):
    """The context cannot be captured or restored deterministically."""


# ---------------------------------------------------------------------------
# Event registry
# ---------------------------------------------------------------------------

def build_event_registry(ctx: SimContext) -> Dict[str, Event]:
    """Map every snapshot-reachable event name to its Event object.

    Events are not SimObjects, so they are discovered through two
    channels: each kernel object's ``__snapshot_events__()`` hook and
    each process's ``terminated_event``.  Names must be unique — they
    are hierarchical by construction.
    """
    registry: Dict[str, Event] = {}

    def _add(event: Event) -> None:
        existing = registry.get(event.name)
        if existing is not None and existing is not event:
            raise SnapshotError(
                f"duplicate event name in snapshot registry: {event.name!r}"
            )
        registry[event.name] = event

    for obj in ctx.objects.values():
        hook = getattr(obj, "__snapshot_events__", None)
        if hook is None:
            continue
        for event in hook():
            _add(event)
    for proc in ctx.processes:
        _add(proc.terminated_event)
    return registry


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

def _check_quiescent(ctx: SimContext) -> None:
    if ctx._running:
        raise SnapshotError("cannot capture while the scheduler is running")
    if not ctx.elaborated:
        raise SnapshotError("cannot capture an un-elaborated context")
    if ctx._runnable:
        raise SnapshotError(
            f"context not quiescent: {len(ctx._runnable)} runnable process(es)"
        )
    if ctx._update_queue:
        raise SnapshotError("context not quiescent: pending channel updates")
    if ctx._delta_events:
        raise SnapshotError("context not quiescent: pending delta notifications")
    for proc in ctx.processes:
        if proc.state not in (ProcessState.TERMINATED, ProcessState.WAITING):
            raise SnapshotError(
                f"process {proc.name} is {proc.state.name}, not waiting/terminated"
            )


def _wait_record(
    proc: Process, event_names: Dict[int, str]
) -> Optional[Dict[str, Any]]:
    if proc.state is not ProcessState.WAITING:
        return None
    timeout = None
    handle = proc._timeout_handle
    if handle is not None:
        if handle[2] == KIND_CANCELLED:  # ENTRY_KIND
            handle = None
        else:
            timeout = [handle[0], handle[1]]  # when_fs, seq
    if proc._waiting_static:
        mode = "static"
        events: List[str] = []
        pending: List[str] = []
    elif proc._wait_events:
        events = []
        for event in proc._wait_events:
            name = event_names.get(id(event))
            if name is None:
                raise SnapshotError(
                    f"process {proc.name} waits on unregistered event "
                    f"{event.name!r}; the owning object must expose it via "
                    "__snapshot_events__ (or the wait is on a transient "
                    "event and the context is not at a checkpointable "
                    "boundary)"
                )
            events.append(name)
        pending_set = proc._pending_all
        if pending_set:
            mode = "all"
            pending = [n for e, n in zip(proc._wait_events, events)
                       if e in pending_set]
        else:
            mode = "any"
            pending = []
    elif timeout is not None:
        mode = "timed"
        events = []
        pending = []
    else:
        raise SnapshotError(f"process {proc.name} is waiting on nothing")
    return {"mode": mode, "events": events, "pending": pending,
            "timeout": timeout}


def capture_state(
    ctx: SimContext, extras: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Serialize a quiescent context into one JSON-able dict."""
    _check_quiescent(ctx)
    registry = build_event_registry(ctx)
    event_names: Dict[int, str] = {id(ev): name for name, ev in registry.items()}
    proc_names: Dict[int, str] = {id(p): p.name for p in ctx.processes}

    heap: List[List[Any]] = []
    for entry in ctx._timed_heap:
        when_fs, seq, kind, payload = entry
        if kind == KIND_CANCELLED:
            continue
        if kind == KIND_EVENT:
            name = event_names.get(id(payload))
            if name is None:
                raise SnapshotError(
                    f"timed notification on unregistered event {payload.name!r}"
                )
        elif kind == KIND_RESUME:
            name = proc_names.get(id(payload))
            if name is None:
                raise SnapshotError("timed resume for unknown process")
        else:  # pragma: no cover - defensive
            raise SnapshotError(f"unknown heap entry kind {kind!r}")
        heap.append([when_fs, seq, _KIND_NAMES[kind], name])
    heap.sort()

    events: Dict[str, Any] = {}
    for name, event in registry.items():
        if event._pending_kind == "delta":
            raise SnapshotError(
                f"event {name!r} has a pending delta notification at capture"
            )
        waiters = []
        for waiter in event._dynamic_waiters:
            wname = proc_names.get(id(waiter))
            if wname is None:
                raise SnapshotError(
                    f"event {name!r} has an unknown dynamic waiter"
                )
            waiters.append(wname)
        record: Dict[str, Any] = {}
        if event._trigger_count:
            record["trigger_count"] = event._trigger_count
        if event._last_trigger_delta is not None:
            record["last_trigger_delta"] = event._last_trigger_delta
        if waiters:
            record["waiters"] = waiters
        if record:
            events[name] = record

    processes: Dict[str, Any] = {}
    for proc in ctx.processes:
        record = {
            "kind": "thread" if isinstance(proc, ThreadProcess) else "method",
            "state": proc.state.name.lower(),
        }
        if isinstance(proc, ThreadProcess):
            record["started"] = proc._gen is not None
        wait = _wait_record(proc, event_names)
        if wait is not None:
            record["wait"] = wait
        processes[proc.name] = record

    objects: Dict[str, Any] = {}
    for name, obj in ctx.objects.items():
        hook = getattr(obj, "__snapshot__", None)
        if hook is None:
            continue
        objects[name] = hook()

    snapshot: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "kernel": {
            "now_fs": ctx._now_fs,
            "last_activity_fs": ctx._last_activity._fs,
            "delta_count": ctx._delta_count,
            "next_seq": next(ctx._seq),
            "last_run_outcome": ctx.last_run_outcome,
        },
        "heap": heap,
        "events": events,
        "processes": processes,
        "objects": objects,
    }
    if extras:
        payload = {}
        for key, holder in extras.items():
            hook = getattr(holder, "__snapshot__", None)
            if hook is None:
                raise SnapshotError(f"extra {key!r} has no __snapshot__")
            payload[key] = hook()
        snapshot["extras"] = payload
    return snapshot


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------

def _fresh_wait_shape(
    cond: WaitCondition, event_names: Dict[int, str]
) -> Tuple[str, frozenset, bool]:
    if cond.mode is WaitMode.STATIC:
        return ("static", frozenset(), False)
    if cond.mode is WaitMode.TIMED:
        return ("timed", frozenset(), True)
    names = []
    for event in cond.events:
        name = event_names.get(id(event))
        if name is None:
            raise SnapshotError(
                f"re-primed wait references unregistered event {event.name!r}"
            )
        names.append(name)
    mode = "all" if cond.mode is WaitMode.ALL else "any"
    return (mode, frozenset(names), cond.timeout is not None)


def _snapshot_wait_shape(wait: Dict[str, Any]) -> Tuple[str, frozenset, bool]:
    return (wait["mode"], frozenset(wait["events"]),
            wait.get("timeout") is not None)


def _start_generator(
    proc: ThreadProcess, fn: Callable[[], Optional[Generator]]
) -> Tuple[Generator, WaitCondition]:
    gen = fn()
    if gen is None or not hasattr(gen, "send"):
        raise SnapshotError(
            f"process {proc.name}: body did not return a generator on re-prime"
        )
    try:
        first = gen.send(None)
    except StopIteration:
        raise SnapshotError(
            f"process {proc.name}: body terminated before reaching its "
            "captured yield boundary — the model does not persist its loop "
            "position on instance state"
        ) from None
    return gen, WaitCondition.normalize(first)


def _restore_thread_body(
    ctx: SimContext, proc: ThreadProcess
) -> Callable[[], Optional[Generator]]:
    owner_name, _, _ = proc.name.rpartition(".")
    owner = ctx.objects.get(owner_name)
    if owner is not None:
        hook = getattr(owner, "__restore_thread__", None)
        if hook is not None:
            replacement = hook(proc.name)
            if replacement is not None:
                return replacement
    return proc._fn


def restore_state(
    ctx: SimContext,
    snapshot: Dict[str, Any],
    extras: Optional[Dict[str, Any]] = None,
) -> None:
    """Overlay *snapshot* onto a freshly built, identical context."""
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"unsupported snapshot schema {snapshot.get('schema')!r}"
        )
    if ctx._running:
        raise SnapshotError("cannot restore into a running context")
    if ctx.elaborated or ctx._now_fs or ctx._delta_count:
        raise SnapshotError("restore target must be a fresh, un-run context")

    ctx._elaborate_structure()

    # Object state first: re-primed process bodies read it.  Iterate in
    # snapshot (creation) order so __restore__ hooks that re-create
    # lazily built child objects run before those children's records.
    for name, payload in snapshot["objects"].items():
        obj = ctx.objects.get(name)
        if obj is None:
            raise SnapshotError(
                f"snapshot object {name!r} missing from restore target"
            )
        hook = getattr(obj, "__restore__", None)
        if hook is None:
            raise SnapshotError(f"object {name!r} has no __restore__")
        hook(payload)

    if extras or snapshot.get("extras"):
        extra_payloads = snapshot.get("extras") or {}
        extras = extras or {}
        for key, payload in extra_payloads.items():
            holder = extras.get(key)
            if holder is None:
                raise SnapshotError(f"no restore target for extra {key!r}")
            hook = getattr(holder, "__restore__", None)
            if hook is None:
                raise SnapshotError(f"extra {key!r} has no __restore__")
            hook(payload)

    kernel = snapshot["kernel"]
    ctx._now_fs = kernel["now_fs"]
    ctx._now = SimTime._from_fs(kernel["now_fs"])
    ctx._last_activity = SimTime._from_fs(kernel["last_activity_fs"])
    ctx._delta_count = kernel["delta_count"]
    ctx._deltas_this_timestep = 0
    ctx._seq = itertools.count(kernel["next_seq"])
    ctx.last_run_outcome = kernel["last_run_outcome"]

    registry = build_event_registry(ctx)
    event_names: Dict[int, str] = {id(ev): name for name, ev in registry.items()}
    procs_by_name: Dict[str, Process] = {p.name: p for p in ctx.processes}

    # Rebuild the timed heap with the original sequence numbers.
    heap: List[List[Any]] = []
    entries_by_seq: Dict[int, List[Any]] = {}
    for when_fs, seq, kind_name, name in snapshot["heap"]:
        kind = _KIND_CODES.get(kind_name)
        if kind is None:
            raise SnapshotError(f"unknown heap entry kind {kind_name!r}")
        if kind == KIND_EVENT:
            payload = registry.get(name)
            if payload is None:
                raise SnapshotError(
                    f"heap references unknown event {name!r}"
                )
        else:
            payload = procs_by_name.get(name)
            if payload is None:
                raise SnapshotError(
                    f"heap references unknown process {name!r}"
                )
        entry = [when_fs, seq, kind, payload]
        heap.append(entry)
        entries_by_seq[seq] = entry
        if kind == KIND_EVENT:
            payload._pending_kind = "timed"
            payload._pending_handle = entry
    heap.sort()
    ctx._timed_heap = heap

    # Event trigger history.
    for name, record in snapshot["events"].items():
        event = registry.get(name)
        if event is None:
            raise SnapshotError(f"snapshot event {name!r} missing on restore")
        event._trigger_count = record.get("trigger_count", 0)
        event._last_trigger_delta = record.get("last_trigger_delta")

    # Processes: overlay snapshot state, re-priming live thread bodies.
    proc_records = snapshot["processes"]
    claimed_resumes: set = set()
    for proc in ctx.processes:
        record = proc_records.get(proc.name)
        if record is None:
            # New process layered on top of the checkpoint (e.g. a
            # measured-phase master): give it the init-phase treatment.
            if proc.dont_initialize:
                proc._apply_wait(WaitCondition(WaitMode.STATIC))
            else:
                proc.state = ProcessState.READY
                ctx._runnable.append(proc)
            continue
        if record["state"] == "terminated":
            proc.state = ProcessState.TERMINATED
            continue
        wait = record.get("wait")
        if wait is None:
            raise SnapshotError(f"waiting process {proc.name} has no wait record")
        _adopt_wait(ctx, proc, record, wait, registry, event_names,
                    entries_by_seq, claimed_resumes)

    missing = set(proc_records) - set(procs_by_name)
    if missing:
        raise SnapshotError(
            f"snapshot processes missing from restore target: {sorted(missing)}"
        )

    # Dynamic waiter lists are rebuilt wholesale, in captured order —
    # this also covers partially satisfied all-of waits, where a process
    # waits on an event set but is only registered with the untriggered
    # members.
    for name, record in snapshot["events"].items():
        waiters = record.get("waiters")
        if not waiters:
            continue
        event = registry[name]
        rebuilt = []
        for wname in waiters:
            waiter = procs_by_name.get(wname)
            if waiter is None:
                raise SnapshotError(
                    f"event {name!r} waiter {wname!r} missing on restore"
                )
            rebuilt.append(waiter)
        event._dynamic_waiters = rebuilt

    # Every timed resume must have been claimed as some process's
    # timeout handle; an orphan would fire into a process that is not
    # waiting for it.
    for seq, entry in entries_by_seq.items():
        if entry[2] == KIND_RESUME and seq not in claimed_resumes:
            raise SnapshotError(
                f"orphan timed resume for process {entry[3].name}"
            )

    ctx._run_start_hooks()


def _adopt_wait(
    ctx: SimContext,
    proc: Process,
    record: Dict[str, Any],
    wait: Dict[str, Any],
    registry: Dict[str, Event],
    event_names: Dict[int, str],
    entries_by_seq: Dict[int, List[Any]],
    claimed_resumes: set,
) -> None:
    if isinstance(proc, ThreadProcess):
        if record.get("started"):
            fn = _restore_thread_body(ctx, proc)
            gen, fresh = _start_generator(proc, fn)
            fresh_shape = _fresh_wait_shape(fresh, event_names)
            snap_shape = _snapshot_wait_shape(wait)
            if fresh_shape != snap_shape:
                raise SnapshotError(
                    f"process {proc.name}: re-primed wait {fresh_shape} does "
                    f"not match captured wait {snap_shape} — not a replayable "
                    "yield boundary"
                )
            proc._gen = gen
        # A never-started thread (dont_initialize, never triggered) just
        # re-parks on its captured wait; the generator starts on wake.

    proc.state = ProcessState.WAITING
    proc._wake_value = None
    mode = wait["mode"]
    if mode == "static":
        proc._waiting_static = True
    elif mode in ("any", "all"):
        events = tuple(registry[name] for name in wait["events"])
        proc._wait_events = events
        if mode == "all":
            proc._pending_all = {registry[name] for name in wait["pending"]}
    elif mode != "timed":
        raise SnapshotError(f"unknown wait mode {mode!r}")

    timeout = wait.get("timeout")
    if timeout is not None:
        when_fs, seq = timeout
        entry = entries_by_seq.get(seq)
        if entry is None or entry[0] != when_fs or entry[2] != KIND_RESUME \
                or entry[3] is not proc:
            raise SnapshotError(
                f"process {proc.name}: timeout heap entry {timeout} not found"
            )
        proc._timeout_handle = entry
        claimed_resumes.add(seq)
    elif mode == "timed":
        raise SnapshotError(
            f"process {proc.name}: timed wait without a timeout entry"
        )
