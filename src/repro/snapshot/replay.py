"""Fault-campaign replay from checkpoints.

Re-running a fault campaign usually means re-simulating the entire
history just to reach the injection instant.  :class:`FaultReplay`
instead checkpoints the model at a quiescent instant *before* the
injection and restores from there, so the expensive prefix is simulated
once and every replay variant pays only for the suffix.

The class is built around a *builder* callable: each invocation must
construct a fresh, structurally identical, un-run model and return
``(ctx, extras)`` where ``extras`` maps names to non-SimObject state
holders (typically ``{"fault_plan": plan}``) that participate in
capture/restore.  Determinism of the builder is the caller's contract —
the same contract the sweep cache already relies on.

Quiescence is model-dependent: an instant in the middle of a bus
transaction is not capturable (the requester waits on a transient
per-transaction event), and :func:`capture_state` correctly refuses it.
:meth:`checkpoint_before` therefore walks a caller-supplied ladder of
candidate instants from the latest backwards and returns the first one
that captures cleanly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.kernel.simtime import SimTime
from repro.snapshot.state import SnapshotError, capture_state, restore_state

Builder = Callable[[], Tuple[Any, Dict[str, Any]]]


class FaultReplay:
    """Replay a deterministic fault campaign from a mid-run checkpoint."""

    def __init__(self, builder: Builder):
        self._builder = builder

    def baseline(self, until: SimTime) -> Tuple[Any, Dict[str, Any]]:
        """Run a fresh build uninterrupted to *until* (the reference)."""
        ctx, extras = self._builder()
        ctx.run(until=until)
        return ctx, extras

    def capture_at(self, when: SimTime) -> Dict[str, Any]:
        """Run a fresh build to *when* and capture it.

        Raises :class:`SnapshotError` when *when* is not a quiescent
        instant for this model.
        """
        ctx, extras = self._builder()
        ctx.run(until=when)
        return capture_state(ctx, extras=extras)

    def checkpoint_before(
        self,
        injection_fs: int,
        candidates_fs: Iterable[int],
    ) -> Tuple[Dict[str, Any], int]:
        """Capture at the latest capturable candidate before an injection.

        *injection_fs* is the femtosecond timestamp of the fault record
        being replayed (``FaultRecord.now_fs``); *candidates_fs* is a
        ladder of instants to try, e.g. multiples of the injection
        period.  Returns ``(snapshot, chosen_fs)``.
        """
        tried: List[int] = []
        for when_fs in sorted(
            {c for c in candidates_fs if 0 <= c < injection_fs}, reverse=True
        ):
            tried.append(when_fs)
            try:
                return self.capture_at(SimTime(when_fs)), when_fs
            except SnapshotError:
                continue
        raise SnapshotError(
            f"no capturable instant before injection at {injection_fs} fs "
            f"(tried {len(tried)} candidate(s))"
        )

    def replay(
        self,
        snapshot: Dict[str, Any],
        until: SimTime,
        mutate: Optional[Callable[[Any, Dict[str, Any]], None]] = None,
    ) -> Tuple[Any, Dict[str, Any]]:
        """Restore *snapshot* into a fresh build and run the suffix.

        *mutate*, when given, is called with ``(ctx, extras)`` after the
        restore but before the run — the hook point for replay variants
        (tweak a fault rule, raise a threshold) that share the prefix.
        """
        ctx, extras = self._builder()
        restore_state(ctx, snapshot, extras=extras)
        if mutate is not None:
            mutate(ctx, extras)
        ctx.run(until=until)
        return ctx, extras
