"""Durable, content-addressed checkpoints.

A :class:`Checkpoint` wraps a kernel snapshot with the three facts that
decide whether it may be reused: the *configuration key* (whatever
uniquely identifies the model build — e.g. an architecture's
``cache_key()`` plus the boot workload), the *simulation time* the
snapshot was taken at, and the snapshot *code version*.  The digest is
a SHA-256 over the canonical JSON of exactly those facts, so a
checkpoint can only ever be loaded for the (config, time, code)
triple it was captured from — change any of them and the digest, hence
the filename, changes.

On disk a checkpoint is one JSON file named ``<digest>.json`` inside a
checkpoint directory.  The file additionally records a SHA-256 of the
canonical snapshot body; :meth:`Checkpoint.load` recomputes both hashes
and raises :class:`CheckpointError` on any mismatch, so corruption is
detected at load time rather than surfacing as silently divergent
simulation results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.snapshot.state import SNAPSHOT_SCHEMA, SnapshotError

SNAPSHOT_CODE_VERSION = "snapshot-1"

CHECKPOINT_SCHEMA = 1


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or incompatible."""


def _canonical(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def checkpoint_digest(config_key: str, sim_time_fs: int) -> str:
    """Content address for a (config, sim-time, code-version) triple."""
    return hashlib.sha256(_canonical({
        "config": config_key,
        "sim_time_fs": sim_time_fs,
        "code_version": SNAPSHOT_CODE_VERSION,
    })).hexdigest()


@dataclass
class Checkpoint:
    """A kernel snapshot plus the identity facts that gate its reuse."""

    config_key: str
    sim_time_fs: int
    snapshot: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        return checkpoint_digest(self.config_key, self.sim_time_fs)

    @classmethod
    def capture(cls, ctx, config_key: str, *,
                extras: Optional[Dict[str, Any]] = None,
                meta: Optional[Dict[str, Any]] = None) -> "Checkpoint":
        snapshot = ctx.checkpoint(extras=extras)
        if snapshot["kernel"]["now_fs"] != ctx._now_fs:  # pragma: no cover
            raise CheckpointError("snapshot time drifted during capture")
        return cls(config_key=config_key, sim_time_fs=ctx._now_fs,
                   snapshot=snapshot, meta=dict(meta or {}))

    @staticmethod
    def path_for(directory: str, digest: str) -> str:
        """The on-disk path of a checkpoint with *digest* in *directory*."""
        return os.path.join(directory, f"{digest}.json")

    def save(self, directory: str) -> str:
        """Write ``<digest>.json`` into *directory*; returns the path."""
        os.makedirs(directory, exist_ok=True)
        body = _canonical(self.snapshot)
        record = {
            "schema": CHECKPOINT_SCHEMA,
            "digest": self.digest,
            "config_key": self.config_key,
            "sim_time_fs": self.sim_time_fs,
            "code_version": SNAPSHOT_CODE_VERSION,
            "body_sha256": hashlib.sha256(body).hexdigest(),
            "meta": self.meta,
            "snapshot": self.snapshot,
        }
        path = self.path_for(directory, self.digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str, digest: str) -> "Checkpoint":
        """Load and verify ``<digest>.json`` from *directory*."""
        path = cls.path_for(directory, digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint {digest} in {directory}")
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint {digest}: {exc}")
        if record.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {digest}: unsupported schema "
                f"{record.get('schema')!r}"
            )
        if record.get("code_version") != SNAPSHOT_CODE_VERSION:
            raise CheckpointError(
                f"checkpoint {digest}: code version "
                f"{record.get('code_version')!r} != {SNAPSHOT_CODE_VERSION!r}"
            )
        snapshot = record.get("snapshot")
        if not isinstance(snapshot, dict) or \
                snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise CheckpointError(f"checkpoint {digest}: malformed snapshot")
        expected = checkpoint_digest(record.get("config_key", ""),
                                     record.get("sim_time_fs", -1))
        if expected != digest or record.get("digest") != digest:
            raise CheckpointError(
                f"checkpoint {digest}: digest mismatch (content addresses "
                f"{expected})"
            )
        body_sha = hashlib.sha256(_canonical(snapshot)).hexdigest()
        if body_sha != record.get("body_sha256"):
            raise CheckpointError(f"checkpoint {digest}: snapshot body corrupt")
        return cls(config_key=record["config_key"],
                   sim_time_fs=record["sim_time_fs"],
                   snapshot=snapshot, meta=dict(record.get("meta") or {}))

    def resume(self, ctx, *, extras: Optional[Dict[str, Any]] = None) -> None:
        """Restore this checkpoint's snapshot into a fresh context."""
        try:
            ctx.resume(self.snapshot, extras=extras)
        except SnapshotError as exc:
            raise CheckpointError(f"restore failed: {exc}") from exc
