"""``repro.snapshot`` — deterministic kernel checkpoint/restore.

The capture side (:func:`capture_state`) serializes a quiescent
:class:`~repro.kernel.context.SimContext` — scheduler heap, event
trigger state, process wait records, and per-object state via the
``__snapshot__``/``__restore__`` protocol — into one JSON-able dict.
The restore side (:func:`restore_state`) replays that dict onto a
*freshly built, structurally identical* context: objects reload their
state, and thread processes are re-primed as replayable segments (a
fresh generator is advanced to its first yield boundary against the
restored channel state, then adopts the captured wait), so no frame
pickling is ever needed.

:class:`Checkpoint` adds the durable form: content-addressed digests
(configuration key + sim time + code version) gate every reuse, so a
checkpoint can only warm-start a simulation it provably matches.
:class:`FaultReplay` restores a fault campaign to the instant before
an injection instead of re-simulating the whole history.
"""

from repro.snapshot.state import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    capture_state,
    restore_state,
)
from repro.snapshot.checkpoint import (
    SNAPSHOT_CODE_VERSION,
    Checkpoint,
    CheckpointError,
    checkpoint_digest,
)
from repro.snapshot.replay import FaultReplay

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "FaultReplay",
    "SNAPSHOT_CODE_VERSION",
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "capture_state",
    "checkpoint_digest",
    "restore_state",
]
