"""``repro.rtl`` — pin-accurate substrate.

Clocked RTL primitives and the cycle-by-cycle bus core that serves as
the pin-accurate reference fabric for the accessor-based prototype and
for the CCATB accuracy/speed experiments.
"""

from repro.rtl.buscore import RtlBusCore, RtlMasterPort
from repro.rtl.primitives import Counter, Reg, ShiftRegister

__all__ = [
    "Counter",
    "Reg",
    "RtlBusCore",
    "RtlMasterPort",
    "ShiftRegister",
]
