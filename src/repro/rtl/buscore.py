"""Cycle-by-cycle bus core: the pin-accurate reference fabric.

Where the CCATB :class:`~repro.cam.bus.BusCam` computes a transaction's
duration arithmetically, :class:`RtlBusCore` *simulates every bus
cycle*: a clocked process advances an arbitration/command unit and one
or two data engines each rising edge.  Functionally and in cycle counts
it implements the same protocol family (arb cycles, address cycles, one
beat per cycle, wait states, optional address pipelining with split
read/write data paths) — it is the reference model experiments E1/E2
compare the CCATB models against, playing the role the authors' RTL/BCA
models play in the literature.

Masters attach through :class:`RtlMasterPort`, a request/grant/done
latch interface an accessor drives pin-accurately.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Generator, List, Optional

from repro.kernel.clock import Clock
from repro.kernel.errors import ElaborationError, SimulationError
from repro.kernel.event import Event
from repro.kernel.module import Module
from repro.ocp.types import OcpRequest, OcpResponse
from repro.cam.arbiters import Arbiter, StaticPriorityArbiter
from repro.cam.bus import BusTiming, SlaveBinding


class RtlMasterPort:
    """One master's request latch on the RTL bus core.

    Protocol (all observed at rising clock edges by the core):

    1. master sets ``request`` and raises ``req``;
    2. the core arbitrates, runs the command phase, queues the data
       phase; when the transaction's data phase completes it stores
       ``response`` and notifies ``done``;
    3. master lowers ``req`` (automatically on completion here) and may
       issue the next request.
    """

    def __init__(self, name: str, core: "RtlBusCore", priority: int):
        self.name = name
        self.core = core
        self.priority = priority
        self.req = False
        self.request: Optional[OcpRequest] = None
        self.response: Optional[OcpResponse] = None
        self.done = Event(core, f"{core.full_name}.{name}.done")
        self.seq = 0
        self.granted = False
        self.transactions = 0

    def submit(self, request: OcpRequest) -> None:
        """Latch a request; the core samples it next edge."""
        if self.req:
            raise SimulationError(
                f"rtl bus master {self.name!r}: request already pending"
            )
        self.request = request
        self.response = None
        self.granted = False
        self.seq = next(self.core._seq)
        self.req = True

    def transport(self, request: OcpRequest) -> Generator:
        """Blocking convenience used by TL masters and tests."""
        if request.master_id is None:
            request.master_id = self.name
        self.submit(request)
        while self.response is None:
            yield self.done
        self.transactions += 1
        return self.response

    # attributes the shared Arbiter policies expect
    @property
    def master(self) -> str:
        """Arbiter-facing alias for the port name."""
        return self.name


class _DataEngine:
    """One data path: counts down wait states + beats, then completes."""

    __slots__ = ("name", "busy_cycles", "current", "queue", "total_busy")

    def __init__(self, name: str):
        self.name = name
        self.busy_cycles = 0
        self.current = None  # (port, binding, request)
        self.queue: deque = deque()
        self.total_busy = 0

    def tick(self, core: "RtlBusCore") -> None:
        if self.busy_cycles > 0:
            self.busy_cycles -= 1
            self.total_busy += 1
            if self.busy_cycles == 0:
                core._finish(self, *self.current)
                self.current = None
        if self.busy_cycles == 0 and self.queue:
            port, binding, request = self.queue.popleft()
            self.current = (port, binding, request)
            self.busy_cycles = (
                binding.wait_states(request) + request.burst_length
            )


class RtlBusCore(Module):
    """The clocked bus fabric."""

    def __init__(
        self,
        name,
        parent=None,
        ctx=None,
        clock: Clock = None,
        timing: Optional[BusTiming] = None,
        arbiter: Optional[Arbiter] = None,
    ):
        super().__init__(name, parent, ctx)
        if clock is None:
            raise ElaborationError(f"rtl bus {name!r} needs a clock")
        self.clock = clock
        self.timing = timing or BusTiming(pipelined=True, split_rw=True)
        self.arbiter = arbiter or StaticPriorityArbiter()
        self.slaves: List[SlaveBinding] = []
        self.ports: List[RtlMasterPort] = []
        self._seq = itertools.count()
        if self.timing.split_rw:
            self._engines = {
                "read": _DataEngine("read"),
                "write": _DataEngine("write"),
            }
        else:
            self._engines = {"data": _DataEngine("data")}
        self._cmd_countdown = 0
        self._cmd_current = None  # (port, binding, request)
        self.cycles = 0
        self.transactions_completed = 0
        self.add_thread(self._core, "core")

    # -- wiring ------------------------------------------------------------------

    def master_port(self, name: str, priority: int = 0) -> RtlMasterPort:
        """Create a master latch on this fabric."""
        port = RtlMasterPort(name, self, priority)
        self.ports.append(port)
        return port

    def attach_slave(self, target, base: int, size: int,
                     name: Optional[str] = None,
                     read_wait: Optional[int] = None,
                     write_wait: Optional[int] = None,
                     localize: Optional[bool] = None) -> SlaveBinding:
        """Map a functional slave into the address map."""
        if not hasattr(target, "access"):
            raise ElaborationError(
                f"rtl bus {self.full_name}: slaves must be functional "
                f"(access())"
            )
        if localize is None:
            localize = True
        binding = SlaveBinding(
            target=target, base=base, size=size,
            name=name or getattr(target, "full_name", repr(target)),
            read_wait=read_wait, write_wait=write_wait, localize=localize,
        )
        for other in self.slaves:
            if binding.base < other.end and other.base < binding.end:
                raise ElaborationError(
                    f"rtl bus {self.full_name}: address overlap between "
                    f"{binding.name!r} and {other.name!r}"
                )
        self.slaves.append(binding)
        return binding

    def decode(self, addr: int, nbytes: int) -> Optional[SlaveBinding]:
        """Address decode; the burst must fit one region."""
        for binding in self.slaves:
            if binding.contains(addr, nbytes):
                return binding
        return None

    def _engine_for(self, request: OcpRequest) -> _DataEngine:
        if self.timing.split_rw:
            return self._engines["read" if request.cmd.is_read else "write"]
        return self._engines["data"]

    # -- the clocked core -----------------------------------------------------------

    def _core(self) -> Generator:
        edge = self.clock.posedge_event
        while True:
            yield edge
            self.cycles += 1
            for engine in self._engines.values():
                engine.tick(self)
            self._command_unit_tick()

    def _command_unit_tick(self) -> None:
        # The grant edge itself does not count (arbitration elapses on
        # the following ``cmd_cycles`` edges) and the data engine starts
        # on the hand-off edge — together this makes one transaction
        # cost exactly cmd_cycles + wait + beats edges, matching the
        # CCATB formula cycle for cycle.
        if self._cmd_countdown > 0:
            self._cmd_countdown -= 1
            if self._cmd_countdown == 0:
                port, binding, request = self._cmd_current
                self._cmd_current = None
                if binding is None:
                    self._complete(port, OcpResponse.error())
                else:
                    engine = self._engine_for(request)
                    entry = (port, binding, request)
                    if engine.busy_cycles == 0 and not engine.queue:
                        # Engine free: the data phase starts on this
                        # edge (its first wait/beat cycle elapses by the
                        # next tick).
                        engine.current = entry
                        engine.busy_cycles = (
                            binding.wait_states(request)
                            + request.burst_length
                        )
                    else:
                        engine.queue.append(entry)
            return
        self._try_grant()

    def _try_grant(self) -> None:
        if (not self.timing.pipelined
                and any(e.busy_cycles or e.queue
                        for e in self._engines.values())):
            return
        pending = [
            p for p in self.ports if p.req and not p.granted
        ]
        if not pending:
            return
        chosen = self.arbiter.pick(pending, self.cycles)
        if chosen is None:
            return
        chosen.granted = True
        request = chosen.request
        binding = self.decode(request.addr, request.nbytes)
        self._cmd_current = (chosen, binding, request)
        self._cmd_countdown = self.timing.cmd_cycles

    def _finish(self, engine: _DataEngine, port: RtlMasterPort,
                binding: SlaveBinding, request: OcpRequest) -> None:
        try:
            response = binding.target.access(binding.localized(request))
        except Exception:
            response = OcpResponse.error()
        self._complete(port, response)

    def _complete(self, port: RtlMasterPort,
                  response: OcpResponse) -> None:
        port.req = False
        port.granted = False
        port.response = response
        self.transactions_completed += 1
        port.done.notify()

    # -- checkpoint/restore protocol (see repro.snapshot) ---------------------

    def __snapshot_events__(self):
        return tuple(port.done for port in self.ports)

    def __snapshot__(self) -> dict:
        from repro.snapshot.state import SnapshotError

        # The pin-accurate core is only checkpointable bus-idle: the
        # command unit and data engines hold live object tuples that
        # cannot be serialized by name, so a mid-transaction capture is
        # refused rather than approximated.
        if self._cmd_current is not None or self._cmd_countdown:
            raise SnapshotError(
                f"rtl bus {self.full_name}: command phase in flight"
            )
        for engine in self._engines.values():
            if engine.busy_cycles or engine.current is not None \
                    or engine.queue:
                raise SnapshotError(
                    f"rtl bus {self.full_name}: data engine "
                    f"{engine.name!r} busy"
                )
        for port in self.ports:
            if port.req:
                raise SnapshotError(
                    f"rtl bus {self.full_name}: port {port.name!r} has a "
                    "pending request"
                )
        return {
            "cycles": self.cycles,
            "transactions_completed": self.transactions_completed,
            "next_seq": next(self._seq),
            "arbiter": self.arbiter.snapshot_state(),
            "engines": {
                name: engine.total_busy
                for name, engine in self._engines.items()
            },
            "ports": {
                port.name: {"seq": port.seq,
                            "transactions": port.transactions}
                for port in self.ports
            },
        }

    def __restore__(self, state: dict) -> None:
        self.cycles = state["cycles"]
        self.transactions_completed = state["transactions_completed"]
        self._seq = itertools.count(state["next_seq"])
        self.arbiter.restore_state(state["arbiter"])
        for name, total_busy in state["engines"].items():
            self._engines[name].total_busy = total_busy
        by_name = {port.name: port for port in self.ports}
        for name, payload in state["ports"].items():
            port = by_name[name]
            port.seq = payload["seq"]
            port.transactions = payload["transactions"]
            port.req = False
            port.granted = False
            port.request = None
            port.response = None

    # -- reporting -------------------------------------------------------------------

    def utilization(self) -> float:
        """Fraction of cycles with an active data phase."""
        if self.cycles == 0:
            return 0.0
        busy = sum(e.total_busy for e in self._engines.values())
        return min(busy / (self.cycles * len(self._engines)), 1.0)
