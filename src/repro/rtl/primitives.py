"""Clocked RTL building blocks.

Small synthesizable-style primitives used by the accessors and available
for user RTL refinements: registers, counters, and a shift register.
Each is a module with a method process on the clock's rising edge,
so their simulation cost is per-cycle — the defining property of the
pin-accurate level.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.clock import Clock
from repro.kernel.module import Module
from repro.kernel.signal import Signal


class Reg(Module):
    """A D-type register: ``q <= d`` on every rising clock edge.

    ``en`` (optional signal) gates updates; ``reset`` (optional signal,
    synchronous, active high) forces ``reset_value``.
    """

    def __init__(self, name, parent=None, ctx=None, clock: Clock = None,
                 d: Signal = None, q: Signal = None,
                 en: Optional[Signal] = None,
                 reset: Optional[Signal] = None, reset_value=0):
        super().__init__(name, parent, ctx)
        if clock is None or d is None or q is None:
            raise ValueError(f"Reg {name!r} needs clock, d and q signals")
        self.clock = clock
        self.d = d
        self.q = q
        self.en = en
        self.reset = reset
        self.reset_value = reset_value
        self.add_method(self._tick, sensitive=[clock.posedge_event],
                        dont_initialize=True)

    def _tick(self) -> None:
        if self.reset is not None and self.reset.read():
            self.q.write(self.reset_value)
            return
        if self.en is None or self.en.read():
            self.q.write(self.d.read())


class Counter(Module):
    """An up-counter with synchronous clear and enable."""

    def __init__(self, name, parent=None, ctx=None, clock: Clock = None,
                 width: int = 32, en: Optional[Signal] = None,
                 clear: Optional[Signal] = None):
        super().__init__(name, parent, ctx)
        if clock is None:
            raise ValueError(f"Counter {name!r} needs a clock")
        self.clock = clock
        self.width = width
        self.en = en
        self.clear = clear
        self.count = Signal("count", self, init=0, check_writer=False)
        self._mask = (1 << width) - 1
        self.add_method(self._tick, sensitive=[clock.posedge_event],
                        dont_initialize=True)

    def _tick(self) -> None:
        if self.clear is not None and self.clear.read():
            self.count.write(0)
            return
        if self.en is None or self.en.read():
            self.count.write((self.count.read() + 1) & self._mask)


class ShiftRegister(Module):
    """A serial-in shift register; ``q`` holds the packed contents."""

    def __init__(self, name, parent=None, ctx=None, clock: Clock = None,
                 depth: int = 8, d: Signal = None,
                 en: Optional[Signal] = None):
        super().__init__(name, parent, ctx)
        if clock is None or d is None:
            raise ValueError(f"ShiftRegister {name!r} needs clock and d")
        self.clock = clock
        self.depth = depth
        self.d = d
        self.en = en
        self.q = Signal("q", self, init=0, check_writer=False)
        self._mask = (1 << depth) - 1
        self.add_method(self._tick, sensitive=[clock.posedge_event],
                        dont_initialize=True)

    def _tick(self) -> None:
        if self.en is None or self.en.read():
            shifted = ((self.q.read() << 1) | (1 if self.d.read() else 0))
            self.q.write(shifted & self._mask)
