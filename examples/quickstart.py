#!/usr/bin/env python3
"""Quickstart: a minimal SHIP system, from zero to simulation.

Builds the smallest interesting system the paper's methodology
describes: two processing elements on a SHIP channel — one master
(send/request), one slave (recv/reply) — first untimed
(component-assembly model), then with a CCATB timing annotation,
demonstrating that PE code survives the refinement unchanged and that
master/slave roles are detected automatically.

Run:  python examples/quickstart.py
"""

from repro.kernel import Module, SimContext, ns
from repro.models import ProcessingElement
from repro.ship import (
    ShipChannel,
    ShipInt,
    ShipMasterPort,
    ShipSlavePort,
    ShipString,
    ShipTiming,
)


class Requester(ProcessingElement):
    """A master PE: pushes work items, asks for their results."""

    def __init__(self, name, parent, channel, jobs):
        super().__init__(name, parent)
        self.jobs = jobs
        self.results = []
        self.port = self.ship_port("port", ShipMasterPort)
        self.port.bind(channel)
        self.add_thread(self.run)

    def run(self):
        for job in self.jobs:
            # request = send + wait for the peer's reply (blocking call)
            reply = yield from self.port.request(ShipInt(job))
            self.results.append(reply.value)
            print(f"  [{self.ctx.now}] requester: {job} -> {reply.value}")
        yield from self.port.send(ShipString("shutdown"))


class Worker(ProcessingElement):
    """A slave PE: serves requests until told to shut down."""

    def __init__(self, name, parent, channel):
        super().__init__(name, parent)
        self.port = self.ship_port("port", ShipSlavePort)
        self.port.bind(channel)
        self.add_thread(self.run)

    def run(self):
        while True:
            message = yield from self.port.recv()
            if isinstance(message, ShipString):
                print(f"  [{self.ctx.now}] worker: got "
                      f"{message.value!r}, stopping")
                return
            yield ns(50)  # model the computation time
            yield from self.port.reply(ShipInt(message.value ** 2))


def build_and_run(timing=None):
    ctx = SimContext()
    top = Module("top", ctx=ctx)
    channel = ShipChannel("link", top, timing=timing)
    requester = Requester("requester", top, channel, jobs=[2, 3, 4])
    Worker("worker", top, channel)
    ctx.run()
    print(f"  results: {requester.results}, finished at {ctx.now}")
    print(f"  detected roles: "
          f"{ {e.value: r.value for e, r in channel.detected_roles().items()} }")
    return requester.results


def main():
    print("== component-assembly model (untimed SHIP channel) ==")
    untimed = build_and_run()

    print("\n== CCATB refinement (same PEs, annotated channel) ==")
    timed = build_and_run(
        timing=ShipTiming(base_latency=ns(100), per_byte=ns(2))
    )

    assert untimed == timed == [4, 9, 16]
    print("\nPE code unchanged, outputs identical, timing refined. Done.")


if __name__ == "__main__":
    main()
