#!/usr/bin/env python3
"""Fast communication architecture exploration with the CAM library.

Sweeps candidate communication architectures (CoreConnect PLB, OPB, a
generic shared bus, and a crossbar, under different arbitration
policies) over the three standard workloads, printing the designer-facing
comparison table and the Pareto-optimal design points per workload —
the §3 use case of the paper.

Run:  python examples/arch_exploration.py
"""

import time

from repro.kernel import ns
from repro.explore import (
    DesignSpace,
    explore,
    format_table,
    pareto_front,
    standard_workloads,
)


def main():
    space = DesignSpace(
        fabrics=("plb", "opb", "generic", "crossbar"),
        arbiters=("static-priority", "round-robin"),
        clock_periods=(ns(10),),
        max_bursts=(16,),
    )
    print(f"design space: {len(space)} configurations "
          f"x {len(standard_workloads())} workloads\n")

    wall_start = time.perf_counter()
    for workload_name, specs in standard_workloads().items():
        results = explore(space, specs, workload_name=workload_name)
        print(f"=== workload: {workload_name} ===")
        print(format_table(results))
        front = pareto_front(results)
        print("pareto-optimal: "
              + ", ".join(r.config.name for r in front))
        best = min(results, key=lambda r: r.mean_latency_ns)
        print(f"lowest latency: {best.config.name} "
              f"({best.mean_latency_ns:.1f} ns)\n")
    wall = time.perf_counter() - wall_start
    total_runs = len(space) * len(standard_workloads())
    print(f"explored {total_runs} design points in {wall:.2f} s "
          f"({total_runs / wall:.1f} points/s) — fast exploration is "
          f"exactly what the CCATB models buy")


if __name__ == "__main__":
    main()
