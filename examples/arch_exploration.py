#!/usr/bin/env python3
"""Fast communication architecture exploration with the sweep engine.

Sweeps candidate communication architectures (CoreConnect PLB, OPB, a
generic shared bus, and a crossbar, under different arbitration
policies) over the three standard workloads — the §3 use case of the
paper — through the parallel, cached ``repro.sweep`` engine.  Each
workload's designer-facing comparison table, Pareto-optimal points, and
ranked winner are printed, then the whole space is swept *again* to
show the persistent result cache making repeat exploration near-free.

Run:  python examples/arch_exploration.py
"""

import os
import tempfile
import time

from repro.kernel import ns
from repro.explore import (
    DesignSpace,
    format_table,
    pareto_front,
    standard_workloads,
)
from repro.sweep import GridSearch, SweepEngine, SweepStore


def sweep_all(engine, space):
    """Sweep every standard workload; return {workload: ranked outcomes}."""
    ranked_by_workload = {}
    for workload_name, specs in standard_workloads().items():
        search = GridSearch(space, specs, workload=workload_name)
        ranked_by_workload[workload_name] = search.run(engine)
    return ranked_by_workload


def main():
    space = DesignSpace(
        fabrics=("plb", "opb", "generic", "crossbar"),
        arbiters=("static-priority", "round-robin"),
        clock_periods=(ns(10),),
        max_bursts=(16,),
    )
    workers = min(4, os.cpu_count() or 1)
    print(f"design space: {len(space)} configurations "
          f"x {len(standard_workloads())} workloads "
          f"({workers} worker process(es))\n")

    with tempfile.TemporaryDirectory(prefix="sweep_cache_") as cache_dir, \
            SweepEngine(workers=workers,
                        store=SweepStore(cache_dir)) as engine:
        # One engine for every workload below: the warm worker pool
        # spawns on the first sweep and is reused by the rest.

        wall_start = time.perf_counter()
        ranked_by_workload = sweep_all(engine, space)
        wall = time.perf_counter() - wall_start

        for workload_name, outcomes in ranked_by_workload.items():
            results = [o.result for o in outcomes]
            print(f"=== workload: {workload_name} ===")
            print(format_table(results))
            front = pareto_front(results)
            print("pareto-optimal: "
                  + ", ".join(r.config.name for r in front))
            best = outcomes[0].result
            print(f"lowest latency: {best.config.name} "
                  f"({best.mean_latency_ns:.1f} ns)\n")

        total_runs = len(space) * len(standard_workloads())
        print(f"explored {total_runs} design points in {wall:.2f} s "
              f"({total_runs / wall:.1f} points/s; pool: "
              f"{engine.pool_spawns} spawned, {engine.pool_reuses} warm "
              f"reuse(s)) — fast exploration is exactly what the CCATB "
              f"models buy")

        # Second pass over the identical space: every point's content
        # key is already in the JSONL store, so no simulation runs.
        cached_start = time.perf_counter()
        sweep_all(engine, space)
        cached_wall = time.perf_counter() - cached_start
        print(f"re-explored all {total_runs} points from cache in "
              f"{cached_wall:.3f} s "
              f"({engine.last_cached}/{len(space)} hits on the final "
              f"workload, {engine.last_computed} simulated) — repeat "
              f"sweeps are near-free")


if __name__ == "__main__":
    main()
