#!/usr/bin/env python3
"""Observability walkthrough: hooks, metrics, trace export, profiling.

Builds a small producer/consumer design — two OCP masters bursting
through a CoreConnect PLB into a wait-stated memory, plus a FIFO-coupled
pipeline stage — and attaches the full ``repro.obs`` stack:

* a ``MetricsRegistry`` collecting bus / arbiter / FIFO / transaction
  instruments,
* a ``TraceEventCollector`` writing a Chrome trace-event JSON you can
  open in ui.perfetto.dev, and
* a ``SimProfiler`` ranking processes by host dispatch time.

Run:  python examples/observability_demo.py
"""

import json

from repro.cam.coreconnect import PlbBus
from repro.cam.memory import MemorySlave
from repro.kernel import Fifo, Module, SimContext, ns, us
from repro.obs import (
    MetricsRegistry,
    ObserverGroup,
    SimProfiler,
    TraceEventCollector,
    watch_fifo,
)
from repro.ocp.types import OcpCmd, OcpRequest
from repro.trace import TransactionRecorder

BURST = 8
TRANSACTIONS = 12


def build(ctx, registry, recorder):
    """Two masters on a PLB plus a FIFO pipeline stage."""
    top = Module("top", ctx=ctx)
    plb = PlbBus("plb", top, recorder=recorder, metrics=registry)
    memory = MemorySlave("mem", top, size=1 << 16, read_wait=1,
                         write_wait=1)
    plb.attach_slave(memory, 0, 1 << 16)

    fifo = Fifo("work", top, capacity=4)
    watch_fifo(fifo, registry)

    def master(index):
        socket = plb.master_socket(f"m{index}", priority=index)

        def proc():
            for i in range(TRANSACTIONS):
                addr = index * 0x1000 + (i % 8) * BURST * 4
                if i % 2:
                    request = OcpRequest(OcpCmd.RD, addr,
                                         burst_length=BURST)
                else:
                    request = OcpRequest(OcpCmd.WR, addr,
                                         data=[i] * BURST,
                                         burst_length=BURST)
                response = yield from socket.transport(request)
                assert response.ok
                yield from fifo.write((index, i))
                yield ns(80)

        return proc

    def consumer():
        for _ in range(2 * TRANSACTIONS):
            item = yield from fifo.read()
            assert item is not None
            yield ns(200)   # slow consumer: the FIFO visibly fills

    for index in range(2):
        top.add_thread(master(index), f"gen{index}")
    top.add_thread(consumer, "consumer")
    return top


def main():
    ctx = SimContext()
    registry = MetricsRegistry()
    recorder = TransactionRecorder(keep_records=False, metrics=registry)
    build(ctx, registry, recorder)

    profiler = SimProfiler()
    collector = TraceEventCollector()
    collector.attach_recorder(recorder)
    ctx.attach_observer(ObserverGroup(profiler, collector))

    profiler.start()
    ctx.run(us(100))
    profiler.stop()

    print(f"simulated {ctx.now}: {recorder.count} bus transactions, "
          f"{recorder.total_bytes} bytes\n")

    print("process hotspots (host dispatch time)")
    print(profiler.format_table(5))

    snapshot = registry.snapshot(ctx._now_fs)
    util = snapshot["bus.top.plb.utilization"]["value"]
    occupancy = snapshot["fifo.top.work.occupancy"]
    print(f"\nPLB utilization:       {util:.1%}")
    print(f"FIFO mean occupancy:   {occupancy['mean']:.2f} "
          f"(max {occupancy['max']})")
    print(f"arbiter grants:        "
          f"{snapshot['bus.top.plb.arbiter.grants']['value']}")

    collector.write("observability_demo.trace.json")
    registry.write_json("observability_demo.metrics.json",
                        now_fs=ctx._now_fs)
    with open("observability_demo.trace.json", encoding="utf-8") as fh:
        n_events = len(json.load(fh)["traceEvents"])
    print(f"\nwrote observability_demo.trace.json ({n_events} events; "
          f"open in ui.perfetto.dev)")
    print("wrote observability_demo.metrics.json")


if __name__ == "__main__":
    main()
