#!/usr/bin/env python3
"""Checkpoint/restore walkthrough: save a simulation, resume it later.

Three scenes, all built on ``repro.snapshot``:

1. **Round trip** — run a CAM bus workload to a mid-run instant,
   capture the full kernel state, restore it into a *fresh* build and
   finish the run; the finals are byte-identical to an uninterrupted
   run.
2. **Checkpoint files** — the same snapshot saved as a content-
   addressed, digest-verified ``Checkpoint`` file and loaded back.
3. **Fault replay** — checkpoint just before a fault injection and
   replay only the suffix, including a what-if variant that mutates
   the restored model before resuming.

Run:  python examples/checkpoint_demo.py
"""

from repro.cam import GenericBus, MemorySlave
from repro.explore.workload import MasterTrafficSpec, TrafficMaster
from repro.faults import FaultPlan, MemoryFaultInjector
from repro.kernel import Module, SimContext, ns, us
from repro.snapshot import Checkpoint, FaultReplay, SnapshotError

HORIZON = us(1000)


def build():
    """A fresh, structurally identical model on every call.

    Determinism of the builder is the whole contract: a snapshot only
    restores into a build whose object tree matches the captured one.
    """
    ctx = SimContext()
    top = Module("top", ctx=ctx)
    spec = MasterTrafficSpec("m", pattern="random", transactions=60,
                             gap=ns(50))
    bus = GenericBus("bus", top, clock_period=ns(10))
    mem = MemorySlave("mem", top, size=spec.size, read_wait=1,
                      write_wait=1)
    bus.attach_slave(mem, spec.base, spec.size)
    tm = TrafficMaster("tm", top, socket=bus.master_socket(spec.name),
                       spec=spec, seed=7, rng_streams=True)
    return ctx, tm, mem


def fingerprint(ctx, tm, mem):
    """The facts that must survive a save/restore round trip."""
    return (tm.completed, tm.bytes_done, tm.latency.total_ns,
            mem.reads, mem.writes, ctx._now_fs, ctx._delta_count)


def capture_mid_run():
    """Run a fresh build to the first capturable ladder instant.

    An instant in the middle of a bus transaction is not quiescent
    (the requester waits on a transient per-transaction event), and
    ``capture`` refuses it — so probe a ladder instead of trusting one
    hard-coded time.
    """
    for t_ns in (777, 1303, 2222, 3001, 4747):
        ctx, tm, mem = build()
        ctx.run(ns(t_ns))
        try:
            return Checkpoint.capture(ctx, "checkpoint-demo"), t_ns
        except SnapshotError:
            print(f"  t={t_ns}ns is mid-transaction, trying later...")
    raise SystemExit("no capturable instant found")


def main():
    # Scene 1: capture mid-run, restore into a fresh build, finish.
    print("== save -> restore -> run ==")
    ctx, tm, mem = build()
    ctx.run(HORIZON)
    cold = fingerprint(ctx, tm, mem)
    print(f"cold run: {tm.completed} transactions, "
          f"{tm.bytes_done} bytes")

    checkpoint, t_ns = capture_mid_run()
    print(f"captured at t={t_ns}ns "
          f"(digest {checkpoint.digest[:16]}...)")
    ctx2, tm2, mem2 = build()
    checkpoint.resume(ctx2)
    ctx2.run(until=HORIZON)
    warm = fingerprint(ctx2, tm2, mem2)
    print(f"warm run: {tm2.completed} transactions, "
          f"{tm2.bytes_done} bytes")
    assert warm == cold, "restored run diverged from the cold run"
    print("byte-identical: yes")

    # Scene 2: the same checkpoint through its on-disk file format.
    print("\n== checkpoint file ==")
    path = checkpoint.save("demo_checkpoints")
    print(f"saved {path}")
    loaded = Checkpoint.load("demo_checkpoints", checkpoint.digest)
    ctx3, tm3, mem3 = build()
    loaded.resume(ctx3)
    ctx3.run(until=HORIZON)
    assert fingerprint(ctx3, tm3, mem3) == cold
    print("loaded, verified and resumed: byte-identical again")

    # Scene 3: fault replay — simulate the prefix once, replay the
    # suffix from a checkpoint taken just before the injection.
    print("\n== fault replay ==")

    def faulty_builder():
        ctx, tm, mem = build()
        top = ctx.objects["top"]
        plan = FaultPlan(seed=13)
        MemoryFaultInjector("seu", top, memory=mem, plan=plan,
                            period=us(2))
        return ctx, {"fault_plan": plan}

    replayer = FaultReplay(faulty_builder)
    base_ctx, base_extras = replayer.baseline(HORIZON)
    base_plan = base_extras["fault_plan"]
    print(f"baseline campaign: {base_plan.count()} fault(s), "
          f"digest {base_plan.digest()[:16]}...")

    # Restore before the second flip (period us(2) -> t = us(4)).
    snapshot, chosen_fs = replayer.checkpoint_before(
        us(4)._fs, [ns(500 * k)._fs for k in range(1, 8)])
    print(f"checkpointed the prefix at {chosen_fs / 1e6:.0f}ns")
    ctx4, extras = replayer.replay(snapshot, HORIZON)
    assert extras["fault_plan"].digest() == base_plan.digest()
    print("replay reproduces the exact fault log")

    def disarm(ctx, extras):
        injector = ctx.objects["top.seu"]
        injector.max_flips = injector.flips

    ctx5, what_if = replayer.replay(snapshot, HORIZON, mutate=disarm)
    print(f"what-if variant (injector disarmed after restore): "
          f"{what_if['fault_plan'].count()} fault(s) instead of "
          f"{base_plan.count()}")


if __name__ == "__main__":
    main()
