#!/usr/bin/env python3
"""A packet-switch dataplane and the arbitration-fairness experiment.

A 4-port packet switch whose ingress links are SHIP connections
automatically mapped over a fabric by the SystemMapper.  The script
runs it two ways:

1. on a **crossbar** — every port gets its own path, uniform latency;
2. on a **shared bus** under three arbitration policies, with all ports
   loaded — showing the classic fairness trade: static priority starves
   the low-priority ports, round-robin equalizes, TDMA sits in between.

Run:  python examples/packet_switch.py
"""

from repro.kernel import ns, us
from repro.apps import build_packet_switch


def show(system, label):
    latency = system.per_source_mean_latency_ns()
    spread = max(latency.values()) - min(latency.values())
    cells = "  ".join(
        f"p{src}={latency[src]:7.0f}" for src in sorted(latency)
    )
    print(f"  {label:16} {cells}  (spread {spread:7.0f} ns)")
    assert system.flows_in_order(), "per-flow FIFO violated"
    assert system.forwarder.drops == 0
    return spread


def main():
    print("== crossbar fabric (one path per port) ==")
    xbar = build_packet_switch(ports=4, packets_per_port=10)
    xbar.ctx.run(us(1_000_000))
    print(f"  delivered {xbar.total_received} packets, "
          f"per-flow order preserved: {xbar.flows_in_order()}")
    show(xbar, "crossbar")

    print("\n== shared bus, all ports loaded (gap 20 ns) ==")
    spreads = {}
    for arbiter in ("static-priority", "tdma", "round-robin"):
        system = build_packet_switch(
            ports=4, packets_per_port=10,
            fabric_kind="bus", arbiter=arbiter, gap=ns(20),
        )
        system.ctx.run(us(1_000_000))
        spreads[arbiter] = show(system, arbiter)

    print("\nfairness ordering (latency spread across ports):")
    print(f"  round-robin ({spreads['round-robin']:.0f} ns) "
          f"< tdma ({spreads['tdma']:.0f} ns) "
          f"< static-priority ({spreads['static-priority']:.0f} ns)")
    assert (spreads["round-robin"] < spreads["tdma"]
            < spreads["static-priority"])
    print("shapes as expected: priority starves, round-robin shares.")


if __name__ == "__main__":
    main()
