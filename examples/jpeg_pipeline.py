#!/usr/bin/env python3
"""The design flow of Figure 1, end to end, on a JPEG-like pipeline.

Carries one application (source -> Walsh-Hadamard transform -> quantize
sink) through all four levels:

1. component-assembly (untimed SHIP),
2. CCATB (annotated SHIP),
3. communication architecture model (SHIP over CoreConnect PLB), and
4. the pin-accurate prototype (accessors on the RTL fabric),

checking bit-exact functional equivalence at every step and printing
the speed/accuracy profile the flow trades on.

Run:  python examples/jpeg_pipeline.py [blocks]
"""

import sys

from repro.kernel import us
from repro.models import AbstractionLevel
from repro.flow import DesignFlow
from repro.apps import LEVEL_BUILDERS, reference_output

LEVEL_OF = {
    "component-assembly": AbstractionLevel.COMPONENT_ASSEMBLY,
    "ccatb": AbstractionLevel.CCATB,
    "cam": AbstractionLevel.COMM_ARCHITECTURE,
    "prototype": AbstractionLevel.PIN_ACCURATE,
}


def main():
    blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    golden = reference_output(blocks)

    flow = DesignFlow("jpeg_pipeline")
    for name, builder in LEVEL_BUILDERS:
        def make(builder=builder):
            system = builder(blocks)
            return system.ctx, system.outputs
        flow.register(LEVEL_OF[name], make)

    print(f"running the flow on {blocks} blocks...\n")
    report = flow.run_all(max_time=us(1_000_000))
    print(report.format_table())

    assert report.functionally_equivalent, report.mismatches()
    assert report.results[
        AbstractionLevel.COMPONENT_ASSEMBLY
    ].outputs == golden, "output does not match the golden model"
    print(f"timing monotone across refinement: "
          f"{report.timing_monotone()}")

    pv = report.results[AbstractionLevel.COMPONENT_ASSEMBLY]
    rtl = report.results[AbstractionLevel.PIN_ACCURATE]
    if pv.wall_seconds > 0:
        print(f"\nsimulation cost growth PV -> pin-accurate: "
              f"{rtl.delta_cycles / max(pv.delta_cycles, 1):.1f}x "
              f"delta cycles, "
              f"{rtl.wall_seconds / pv.wall_seconds:.1f}x wall clock")


if __name__ == "__main__":
    main()
