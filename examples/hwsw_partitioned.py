#!/usr/bin/env python3
"""HW/SW partitioned system over the generic SHIP-based interface.

Software (an application task on the RTOS, using the device driver and
SHIP communication library) drives a hardware Walsh-Hadamard accelerator
over CoreConnect PLB — the §4 scenario of the paper.  The script:

1. runs the system with the interrupt-driven driver and with the polling
   driver, comparing latency and PIO traffic;
2. demonstrates eSW generation: the same source/sink PE classes that run
   as hardware at the component-assembly level are re-hosted as RTOS
   tasks by library substitution, with identical outputs.

Run:  python examples/hwsw_partitioned.py
"""

from repro.kernel import Module, SimContext, ns, us
from repro.apps import build_hwsw_system, reference_output
from repro.apps.pipeline import SinkPE, SourcePE, TransformPE
from repro.esw import PartitionSpec, generate_esw
from repro.rtos import Rtos
from repro.ship import ShipChannel


def run_partitioned(use_irq: bool, blocks: int = 8):
    system = build_hwsw_system(
        blocks=blocks,
        use_irq=use_irq,
        poll_interval=ns(300),
    )
    system.ctx.run(us(1_000_000))
    assert system.outputs() == reference_output(blocks)
    mode = "interrupt" if use_irq else "polling"
    main_task = system.os.task_by_name("app_main")
    print(f"  {mode:9}: finished at {system.ctx.last_activity_time}, "
          f"driver PIO reads={system.link.driver.pio_reads} "
          f"writes={system.link.driver.pio_writes}, "
          f"app cpu time={main_task.cpu_time}")
    return system


def demo_esw_generation(blocks: int = 8):
    """The whole pipeline as software: eSW generated from the PEs."""
    ctx = SimContext()
    top = Module("top", ctx=ctx)
    c1 = ShipChannel("c1", top)
    c2 = ShipChannel("c2", top)
    source = SourcePE("source", top, c1, blocks)
    transform = TransformPE("transform", top, c1, c2, blocks)
    sink = SinkPE("sink", top, c2, blocks)

    os = Rtos("os", top, context_switch=ns(500))
    spec = PartitionSpec(
        software=[source, transform, sink],
        priorities={"source": 7, "transform": 6, "sink": 5},
    )
    image = generate_esw(spec, os)
    ctx.run(us(1_000_000))

    assert sink.results == reference_output(blocks)
    subs = image.substitutions
    print(f"  generated {len(image.tasks)} eSW tasks; substituted "
          f"{subs.total} primitives "
          f"(delays={subs.delays}, waits={subs.event_waits}, "
          f"executes={subs.executes})")
    print(f"  all-software run finished at {ctx.last_activity_time}, "
          f"context switches={os.context_switches}")
    for entry in image.tasks:
        print(f"    task {entry.task.name:16} cpu={entry.task.cpu_time}")


def main():
    print("== HW/SW partitioned system (SW master -> HW accelerator) ==")
    irq_sys = run_partitioned(use_irq=True)
    poll_sys = run_partitioned(use_irq=False)
    extra = (poll_sys.link.driver.pio_reads
             - irq_sys.link.driver.pio_reads)
    print(f"  polling cost: {extra} extra PIO status reads\n")

    print("== eSW generation (whole pipeline re-hosted on the RTOS) ==")
    demo_esw_generation()
    print("\nsame PE sources, three hosting choices, identical outputs.")


if __name__ == "__main__":
    main()
