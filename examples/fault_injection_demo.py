#!/usr/bin/env python3
"""Fault injection & resilience walkthrough.

Three short acts, all driven by one seeded ``FaultPlan`` so every run
of this script prints exactly the same story:

1. **Recovering from a flaky bus slave.**  Two retrying masters drive a
   CoreConnect PLB; one address region is served by a ``FaultySlave``
   that returns ERR on a deterministic schedule.  Timeouts + exponential
   backoff turn the faults into retries instead of failures.
2. **Surviving a lossy SHIP link.**  A producer issues requests over a
   SHIP channel whose injector drops, corrupts, and delays frames;
   per-call timeouts and ``retry_call`` recover dropped messages, and
   payload corruption surfaces as detectable value mismatches.
3. **Diagnosing a silent hang.**  A slave that never responds hangs the
   bus — no timeout can help the master, because the bus process itself
   is stuck.  A ``SimWatchdog`` converts the silent hang into a
   ``WatchdogError`` whose report names the blocked processes and what
   each one is waiting on.

Run:  python examples/fault_injection_demo.py
"""

from repro.cam.coreconnect import PlbBus
from repro.cam.memory import MemorySlave
from repro.faults import (
    BusFaultInjector,
    FaultPlan,
    FaultRule,
    FaultySlave,
    LinkFaultInjector,
    RetryPolicy,
    RetryingMaster,
    retry_call,
)
from repro.kernel import Module, SimContext, SimWatchdog, WatchdogError, ns, us
from repro.obs import MetricsRegistry
from repro.ocp.types import OcpCmd, OcpRequest
from repro.ship import ShipChannel, ShipInt, ShipPort, ShipTiming

SEED = 2026
TRANSACTIONS = 24
MESSAGES = 16


class BusDriver(Module):
    """Writes then reads back words through a retrying master."""

    def __init__(self, name, parent, master, base):
        super().__init__(name, parent)
        self.master = master
        self.base = base
        self.ok = 0
        self.add_thread(self.drive)

    def drive(self):
        """Alternate word writes and reads over the retry layer."""
        for i in range(TRANSACTIONS):
            addr = self.base + (i % 8) * 4
            if i % 2 == 0:
                request = OcpRequest(OcpCmd.WR, addr, data=[i])
            else:
                request = OcpRequest(OcpCmd.RD, addr)
            yield from self.master.transport(request)
            self.ok += 1
            yield ns(40)


class Producer(Module):
    """Requests echoes over the lossy link with timeout + retry."""

    def __init__(self, name, parent, policy):
        super().__init__(name, parent)
        self.port = ShipPort("port", self)
        self.policy = policy
        self.ok = 0
        self.mismatches = 0
        self.add_thread(self.produce)

    def produce(self):
        """Issue MESSAGES echo requests, retrying lost ones."""
        for i in range(MESSAGES):
            reply = yield from retry_call(
                lambda: self.port.request(ShipInt(i), timeout=us(2)),
                self.policy,
                what=f"echo request {i}",
            )
            if reply.value == i + 1:
                self.ok += 1
            else:
                self.mismatches += 1


class Echo(Module):
    """Replies value+1 to every request, forever."""

    def __init__(self, name, parent):
        super().__init__(name, parent)
        self.port = ShipPort("port", self)
        self.add_thread(self.serve)

    def serve(self):
        """Echo loop."""
        while True:
            msg = yield from self.port.recv()
            yield from self.port.reply(ShipInt(msg.value + 1))


def recovery_demo():
    """Acts 1 & 2: flaky slave + lossy link, fully recovered."""
    ctx = SimContext(name="recovery")
    top = Module("top", ctx=ctx)
    metrics = MetricsRegistry()
    plan = FaultPlan(seed=SEED, metrics=metrics)

    # -- act 1: PLB with a healthy memory and a flaky one ------------
    plb = PlbBus("plb", top, clock_period=ns(10), metrics=metrics)
    plb.fault_injector = BusFaultInjector(
        plan, error=FaultRule(every_nth=9))
    good = MemorySlave("good", top, size=0x1000)
    plb.attach_slave(good, base=0x0000, size=0x1000)
    flaky_mem = MemorySlave("flaky_mem", top, size=0x1000)
    flaky = FaultySlave(
        "flaky", top, target=flaky_mem, plan=plan,
        rule=FaultRule(every_nth=4), mode="error",
    )
    plb.attach_slave(flaky, base=0x2000, size=0x1000, localize=True)

    policy = RetryPolicy(max_attempts=5, backoff=ns(100),
                         exponential=True)
    drivers = []
    for i, base in enumerate((0x0000, 0x2000)):
        socket = plb.master_socket(f"m{i}", priority=i)
        master = RetryingMaster(
            f"retry{i}", top, socket=socket, policy=policy,
            timeout=us(4), plan=plan,
        )
        drivers.append(BusDriver(f"drv{i}", top, master, base))

    # -- act 2: SHIP link that drops / corrupts / delays frames ------
    link = ShipChannel(
        "link", top,
        timing=ShipTiming(base_latency=ns(20), per_byte=ns(1)),
    )
    link.fault_injector = LinkFaultInjector(
        plan,
        drop=FaultRule(every_nth=5),
        corrupt=FaultRule(every_nth=7),
        delay=FaultRule(every_nth=6),
        extra_latency=ns(300),
    )
    producer = Producer("producer", top, policy)
    echo = Echo("echo", top)
    producer.port.bind(link)
    echo.port.bind(link)

    ctx.run(us(10_000))

    print(f"act 1+2 finished at {ctx.now}")
    for drv in drivers:
        print(f"  {drv.name}: {drv.ok}/{TRANSACTIONS} transactions ok, "
              f"{drv.master.retries} retries, "
              f"{drv.master.recoveries} recoveries")
    print(f"  producer: {producer.ok}/{MESSAGES} echoes ok, "
          f"{producer.mismatches} corrupted payload(s) detected")
    print("  injected faults by kind:")
    for kind, count in sorted(plan.counts_by_kind().items()):
        print(f"    {kind:18s} {count}")
    print(f"  fault log digest: {plan.digest()[:16]}…")


def watchdog_demo():
    """Act 3: a silent slave hangs the bus; the watchdog names it."""
    ctx = SimContext(name="hang")
    top = Module("top", ctx=ctx)
    plan = FaultPlan(seed=SEED)
    plb = PlbBus("plb", top, clock_period=ns(10))
    mem = MemorySlave("mem", top, size=0x1000)
    silent = FaultySlave(
        "silent", top, target=mem, plan=plan,
        rule=FaultRule(every_nth=3), mode="no_response",
    )
    plb.attach_slave(silent, base=0x0000, size=0x1000, localize=True)
    socket = plb.master_socket("m0")

    def master():
        """Writes until the silent slave swallows one transaction."""
        for i in range(8):
            yield from socket.transport(
                OcpRequest(OcpCmd.WR, i * 4, data=[i]))

    ctx.register_thread(master, "master")
    SimWatchdog("wd", top, timeout=us(5))
    try:
        ctx.run(us(1_000))
    except WatchdogError as err:
        print(f"act 3: watchdog fired at {ctx.now}")
        print("  " + str(err).replace("\n", "\n  "))
    else:
        raise AssertionError("watchdog should have fired")


def main():
    """Run all three acts."""
    recovery_demo()
    print()
    watchdog_demo()


if __name__ == "__main__":
    main()
