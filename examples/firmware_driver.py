#!/usr/bin/env python3
"""The device driver as real firmware on a bus-mastering CPU model.

The deepest demonstration of the paper's HW/SW interface: instead of a
Python task standing in for software, a tiny instruction-set CPU
(`repro.cpu`) executes *assembled machine code* that implements the
mailbox device-driver protocol — polling, frame copy, doorbell, reply
pickup — over the CoreConnect PLB.  On the far side, an unmodified SHIP
slave PE serves the request.

Run:  python examples/firmware_driver.py
"""

from repro.kernel import Module, SimContext, ns, us
from repro.cam import MemorySlave, PlbBus
from repro.cpu import SimpleCpu, assemble, disassemble
from repro.models import (
    CTRL_REQUEST,
    CTRL_VALID,
    MailboxSlave,
    ProcessingElement,
    ShipBusSlaveWrapper,
    bytes_to_words,
    words_to_bytes,
)
from repro.ship import (
    ShipChannel,
    ShipInt,
    ShipSlavePort,
    decode_message,
    encode_message,
)

MAILBOX_BASE = 0x8000
FRAME_BASE = 0x1000
RESULT_BASE = 0x2000


class SquarerPE(ProcessingElement):
    """Hardware accelerator: replies with value squared."""

    def __init__(self, name, parent, chan):
        super().__init__(name, parent)
        self.port = self.ship_port("port", ShipSlavePort)
        self.port.bind(chan)
        self.add_thread(self.run)

    def run(self):
        while True:
            req = yield from self.port.recv()
            yield ns(200)
            yield from self.port.reply(ShipInt(req.value ** 2))


def driver_firmware(layout):
    """The mailbox device driver, in assembly (see repro.cpu.isa)."""
    ctrl_in = MAILBOX_BASE + layout.ctrl_in
    len_in = MAILBOX_BASE + layout.len_in
    data_in = MAILBOX_BASE + layout.data_in
    ctrl_out = MAILBOX_BASE + layout.ctrl_out
    len_out = MAILBOX_BASE + layout.len_out
    data_out = MAILBOX_BASE + layout.data_out
    return assemble([
        "poll_free:",
        ("LOAD", ctrl_in),
        ("BNEZ", "poll_free"),
        ("LDI", 0),
        "SETX",
        "copy_in:",                       # memcpy frame -> DATA_IN
        ("LOADX", FRAME_BASE),
        ("STOREX", data_in),
        ("INCX", 4),
        ("LOAD", 0x3000),
        ("ADDI", 4),
        ("STORE", 0x3000),
        ("ADDI", -16),
        ("BNEZ", "copy_in"),
        ("LOAD", 0x3004),                 # frame length in bytes
        ("STORE", len_in),
        ("LDI", CTRL_VALID | CTRL_REQUEST),
        ("STORE", ctrl_in),               # ring the doorbell
        "poll_reply:",
        ("LOAD", ctrl_out),
        ("BEQZ", "poll_reply"),
        ("LOAD", len_out),
        ("STORE", RESULT_BASE + 0x20),
        ("LDI", 0),
        "SETX",
        "copy_out:",                      # memcpy DATA_OUT -> result
        ("LOADX", data_out),
        ("STOREX", RESULT_BASE),
        ("INCX", 4),
        ("LOAD", 0x3008),
        ("ADDI", 4),
        ("STORE", 0x3008),
        ("ADDI", -16),
        ("BNEZ", "copy_out"),
        ("LDI", 0),
        ("STORE", ctrl_out),              # ack the reply
        "HALT",
    ])


def main():
    ctx = SimContext()
    top = Module("top", ctx=ctx)
    plb = PlbBus("plb", top)
    mem = MemorySlave("mem", top, size=MAILBOX_BASE, read_wait=1,
                      write_wait=1)
    plb.attach_slave(mem, 0, MAILBOX_BASE)
    mailbox = MailboxSlave("mbox", top, capacity_words=4,
                           with_irq=False)
    plb.attach_slave(mailbox, MAILBOX_BASE, mailbox.layout.total_bytes)
    chan = ShipChannel("chan", top)
    ShipBusSlaveWrapper("wrap", top, channel=chan, mailbox=mailbox)
    SquarerPE("squarer", top, chan)

    frame = encode_message(ShipInt(21))
    mem.load_words(FRAME_BASE, bytes_to_words(frame))
    mem.load_words(0x3004, [len(frame)])
    code = driver_firmware(mailbox.layout)
    mem.load_words(0, code)
    cpu = SimpleCpu("cpu", top, socket=plb.master_socket("cpu"))

    print("firmware listing (first 8 instructions):")
    for line in disassemble(code)[:8]:
        print("   " + line)
    print("   ...\n")

    ctx.run(us(100_000))
    assert cpu.halted and cpu.fault is None

    reply_len = mem.peek_word(RESULT_BASE + 0x20)
    words = [mem.peek_word(RESULT_BASE + i * 4) for i in range(4)]
    reply, _ = decode_message(words_to_bytes(words, reply_len))
    print(f"firmware sent SHIP request ShipInt(21); reply: "
          f"ShipInt({reply.value})")
    print(f"  {cpu.instructions_retired} instructions retired, "
          f"icache hit rate {cpu.icache_hit_rate:.0%}")
    print(f"  PLB carried {plb.stats.transactions} transactions "
          f"({plb.stats.bytes} bytes); mailbox saw "
          f"{mailbox.bus_reads} reads / {mailbox.bus_writes} writes")
    print(f"  done at {ctx.last_activity_time}")
    assert reply.value == 441


if __name__ == "__main__":
    main()
