#!/usr/bin/env python3
"""Automatic prototype generation with accessors, verified on the pins.

The bottom of the design flow (§3 of the paper): the designer has
refined PEs to pin-level OCP, picks a target communication architecture,
and accessors connect everything automatically.  This script:

1. builds a two-PE prototype on the cycle-by-cycle PLB-like fabric with
   `build_prototype` (one accessor per PE, memory map supplied once);
2. attaches a passive OCP protocol monitor to each PE socket and a VCD
   tracer to one socket's pins;
3. runs a DMA-style transfer, checks data integrity, prints the
   monitors' protocol reports, and leaves `prototype_pins.vcd` for
   GTKWave.

Run:  python examples/prototype_generation.py
"""

from repro.kernel import Clock, Module, SimContext, ns, us
from repro.accessors import SlaveMapEntry, build_prototype
from repro.cam import MemorySlave
from repro.ocp import (
    OcpCmd,
    OcpPinBundle,
    OcpPinMaster,
    OcpPinMonitor,
    OcpRequest,
)
from repro.trace import VcdTracer


def main():
    ctx = SimContext()
    top = Module("top", ctx=ctx)
    clk = Clock("clk", top, period=ns(10))

    # RTL-refined PEs present pin-level OCP: one writer, one reader.
    bundles = {
        "dma": OcpPinBundle("dma_pins", top, clock=clk),
        "cpu": OcpPinBundle("cpu_pins", top, clock=clk),
    }
    mem = MemorySlave("ddr", top, size=1 << 16, read_wait=2,
                      write_wait=1)
    prototype = build_prototype(
        "proto", top, clk, bundles,
        [SlaveMapEntry(mem, 0x0, 1 << 16)],
        fabric="plb",
        priorities={"dma": 1, "cpu": 0},
    )
    monitors = {
        name: OcpPinMonitor(f"{name}_mon", top, bundle=bundle)
        for name, bundle in bundles.items()
    }

    tracer = VcdTracer("prototype_pins.vcd", ctx)
    dma_pins = bundles["dma"]
    tracer.trace(clk, "clk")
    tracer.trace(dma_pins.m_cmd, "dma_MCmd", width=3)
    tracer.trace(dma_pins.m_addr, "dma_MAddr", width=32)
    tracer.trace(dma_pins.s_cmd_accept, "dma_SCmdAccept")
    tracer.trace(dma_pins.s_resp, "dma_SResp", width=2)

    masters = {
        name: OcpPinMaster(f"{name}_drv", top, bundle=bundle)
        for name, bundle in bundles.items()
    }
    payload = [(i * 2654435761) & 0xFFFFFFFF for i in range(64)]
    checked = []

    def dma_writer():
        for offset in range(0, 64, 16):  # PLB-legal 16-beat bursts
            yield from masters["dma"].transport(OcpRequest(
                OcpCmd.WR, 0x1000 + offset * 4,
                data=payload[offset:offset + 16], burst_length=16,
            ))

    def cpu_reader():
        yield us(4)  # let the DMA run first
        data = []
        for offset in range(0, 64, 16):
            resp = yield from masters["cpu"].transport(OcpRequest(
                OcpCmd.RD, 0x1000 + offset * 4, burst_length=16,
            ))
            data.extend(resp.data)
        checked.append(data == payload)
        ctx.stop()

    ctx.register_thread(dma_writer, "dma")
    ctx.register_thread(cpu_reader, "cpu")
    ctx.run(us(1_000))
    tracer.close()

    print(f"prototype ran {prototype.core.cycles} bus cycles, "
          f"{prototype.core.transactions_completed} transactions, "
          f"utilization {prototype.core.utilization():.1%}")
    print(f"data integrity through the pin-level path: "
          f"{'PASS' if checked == [True] else 'FAIL'}")
    for name, monitor in monitors.items():
        report = monitor.report()
        status = "clean" if monitor.clean else "VIOLATIONS"
        print(f"  {name} socket: {report['bursts']} bursts, "
              f"{report['request_beats']} request beats, "
              f"{report['stall_cycles']} stall cycles — {status}")
        for violation in monitor.violations:
            print(f"    {violation}")
    print("waveform written to prototype_pins.vcd")
    assert checked == [True]
    assert all(m.clean for m in monitors.values())


if __name__ == "__main__":
    main()
