#!/usr/bin/env python3
"""Statistically rigorous architecture evaluation with ``repro.stats``.

A single seeded simulation ranks design points by point estimates —
close calls are coin flips.  This example runs the full rigorous
workflow on a small design space over the mixed CPU/DMA/sync workload:

1. a CI-backed sweep: every point replicated under a sequential
   stopping rule ("grow until the 95% CI half-width is within 5% of
   the mean, cap at 8 replicates"), ranked by estimate;
2. steady-state estimation on the winner: MSER transient truncation
   plus batch means over the per-transaction latency series;
3. a common-random-numbers paired comparison — is the shared-bus
   candidate measurably hurt by a 20% slower clock? — on a cheap
   screening-length workload, against the same comparison with
   independent seeds, to show the variance reduction CRN buys on
   exactly this kind of close, contended question.

Run:  python examples/rigorous_exploration.py
"""

import dataclasses
import os
import time

from repro.kernel import ns
from repro.explore import DesignSpace, run_point, standard_workloads
from repro.stats import (
    ReplicationPolicy,
    master_latency_estimate,
    paired_compare,
)
from repro.sweep import GridSearch, SweepEngine

WORKLOAD = "mixed"


def main():
    space = DesignSpace(
        fabrics=("plb", "generic", "crossbar"),
        arbiters=("static-priority", "round-robin"),
        clock_periods=(ns(10),),
        max_bursts=(16,),
    )
    specs = standard_workloads()[WORKLOAD]
    workers = min(4, os.cpu_count() or 1)
    policy = ReplicationPolicy(r_min=2, r_max=8, ci_target=0.05)
    print(f"design space: {len(space)} configurations, workload "
          f"{WORKLOAD}, ci-target 5% @ 95%, 2..8 replicates "
          f"({workers} worker process(es))\n")

    # -- 1. CI-backed ranking -------------------------------------------------
    with SweepEngine(workers=workers) as engine:
        wall_start = time.perf_counter()
        search = GridSearch(space, specs, workload=WORKLOAD)
        outcomes = search.run(engine, replication=policy)
        wall = time.perf_counter() - wall_start

        print("=== CI-backed ranking (mean latency, ns) ===")
        for rank, outcome in enumerate(outcomes, start=1):
            est = outcome.estimate
            stopped = ("met target" if outcome.met_target
                       else "hit cap")
            print(f"{rank:2d}. {outcome.result.config.name:40s} "
                  f"{est.mean:8.2f} ± {est.half_width:5.2f} "
                  f"({est.relative_half_width:5.1%}, "
                  f"{outcome.replicates} replicates, {stopped})")
        total = sum(o.replicates for o in outcomes)
        print(f"\n{total} replicate runs across {len(outcomes)} points "
              f"in {wall:.2f} s — the stopping rule spends replicates "
              f"only where the interval is still too wide\n")

        best, runner_up = outcomes[0], outcomes[1]
        overlap = (best.estimate.upper >= runner_up.estimate.lower)
        print(f"winner: {best.result.config.name}; its CI "
              f"{'overlaps' if overlap else 'is clear of'} the "
              f"runner-up's — "
              f"[{best.estimate.lower:.1f}, {best.estimate.upper:.1f}] "
              f"vs [{runner_up.estimate.lower:.1f}, "
              f"{runner_up.estimate.upper:.1f}]\n")

        # -- 2. Steady-state estimate on the winner ---------------------------
        result = run_point(best.point.config, list(specs),
                           workload_name=WORKLOAD,
                           record_series=True)
        print("=== steady-state latency of the winner, per master ===")
        for spec in specs:
            est = master_latency_estimate(result, master=spec.name)
            d = est.diagnostics
            print(f"{spec.name:6s} {est.mean:7.2f} ± {est.half_width:5.2f} ns "
                  f"({est.method}: dropped {d['truncated']} warm-up "
                  f"sample(s), {d['batches']} batches, lag-1 "
                  f"{d['lag1_autocorr']:+.2f})")
        pooled = master_latency_estimate(result)
        print(f"pooled {pooled.mean:7.2f} ± {pooled.half_width:5.2f} ns "
              f"(lag-1 {pooled.diagnostics['lag1_autocorr']:+.2f} — the "
              f"diagnostic flags the pooled series: masters with very "
              f"different latencies should be read separately)\n")

        # -- 3. CRN paired comparison: clock sensitivity ----------------------
        # The crossbar usually wins by avoiding contention outright;
        # the interesting sensitivity question falls to the cheaper
        # shared-bus candidate: does a 20% slower clock measurably
        # hurt it?  Screening-length replicates keep each run cheap —
        # and short, contended runs are exactly where seed-to-seed
        # workload noise dominates and CRN pays off.
        shared = next(o for o in outcomes
                      if o.result.config.fabric != "crossbar")
        short_specs = tuple(s.scaled(0.1) for s in specs)
        base = dataclasses.replace(shared.point, specs=short_specs)
        slower = dataclasses.replace(
            base,
            config=dataclasses.replace(base.config,
                                       clock_period=ns(12)),
        )
        print(f"=== paired comparison: {shared.result.config.name} "
              f"at 100 MHz vs 83 MHz (screening length) ===")
        crn = paired_compare(engine, base, slower,
                             replicates=8, crn=True)
        ind = paired_compare(engine, base, slower,
                             replicates=8, crn=False)
        for label, cmp in (("common random numbers", crn),
                           ("independent seeds", ind)):
            diff = cmp.difference
            verdict = (f"faster clock wins" if cmp.significant
                       else "not significant")
            print(f"{label:22s} Δ = {diff.mean:+7.2f} ± "
                  f"{diff.half_width:5.2f} ns  ({verdict})")
        if crn.difference.stddev > 0:
            ratio = ind.difference.stddev / crn.difference.stddev
            print(f"\nCRN shrinks the difference stddev {ratio:.1f}x "
                  f"— sharper comparisons from the same replication "
                  f"budget")
        else:
            print("\nCRN cancelled the workload noise completely — "
                  "the paired difference is exact")


if __name__ == "__main__":
    main()
